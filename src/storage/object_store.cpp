#include "storage/object_store.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/rng.hpp"

namespace evolve::storage {

namespace {

/// Stateless 64-bit mix for rendezvous hashing.
std::uint64_t mix_hash(std::uint64_t seed) {
  return util::splitmix64(seed);
}

std::uint64_t string_hash(const std::string& text) {
  // FNV-1a, then a SplitMix finalizer for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix_hash(h);
}

}  // namespace

ObjectStore::ObjectStore(sim::Simulation& sim,
                         const cluster::Cluster& cluster, net::Fabric& fabric,
                         IoSubsystem& io, std::vector<cluster::NodeId> servers,
                         ObjectStoreConfig config)
    : sim_(sim),
      cluster_(cluster),
      fabric_(fabric),
      io_(io),
      servers_(std::move(servers)),
      config_(config) {
  if (servers_.empty()) {
    throw std::invalid_argument("object store needs at least one server");
  }
  if (config_.replicas < 1) {
    throw std::invalid_argument("replicas must be >= 1");
  }
  if (config_.redundancy == Redundancy::kErasure) {
    if (config_.ec_data < 1 || config_.ec_parity < 0) {
      throw std::invalid_argument("bad erasure-coding parameters");
    }
    if (config_.ec_data + config_.ec_parity >
        static_cast<int>(servers_.size())) {
      throw std::invalid_argument(
          "erasure coding needs at least k+m storage servers");
    }
  }
  if (config_.cache_capacity_fraction <= 0 ||
      config_.cache_capacity_fraction > 1.0) {
    throw std::invalid_argument("cache_capacity_fraction must be in (0, 1]");
  }
  for (cluster::NodeId node : servers_) {
    const auto& spec = cluster_.node(node);
    if (spec.devices.empty()) {
      throw std::invalid_argument("storage server '" + spec.name +
                                  "' has no devices");
    }
    ServerState state;
    state.node = node;
    state.durable_device = spec.devices.back().name;
    std::vector<TierConfig> tiers;
    for (std::size_t i = 0; i + 1 < spec.devices.size(); ++i) {
      tiers.push_back(TierConfig{
          spec.devices[i].name,
          static_cast<util::Bytes>(
              static_cast<double>(spec.devices[i].capacity) *
              config_.cache_capacity_fraction)});
      state.cache_tiers.push_back(spec.devices[i].name);
    }
    if (tiers.empty()) {
      // Single-device server: the durable device is also the only "cache".
      tiers.push_back(TierConfig{spec.devices.back().name, 0});
      state.cache_tiers.push_back(spec.devices.back().name);
    }
    state.cache = std::make_unique<TieredCache>(std::move(tiers));
    server_states_.emplace(node, std::move(state));
  }
}

ObjectStore::ServerState& ObjectStore::server_state(cluster::NodeId node) {
  auto it = server_states_.find(node);
  if (it == server_states_.end()) {
    throw std::out_of_range("node is not a storage server");
  }
  return it->second;
}

const ObjectStore::ServerState& ObjectStore::server_state(
    cluster::NodeId node) const {
  auto it = server_states_.find(node);
  if (it == server_states_.end()) {
    throw std::out_of_range("node is not a storage server");
  }
  return it->second;
}

void ObjectStore::create_bucket(const std::string& bucket) {
  if (bucket.empty()) throw std::invalid_argument("empty bucket name");
  buckets_[bucket] = true;
}

bool ObjectStore::bucket_exists(const std::string& bucket) const {
  return buckets_.count(bucket) != 0;
}

std::vector<cluster::NodeId> ObjectStore::ranked_servers(
    const ObjectKey& key) const {
  // Rendezvous hashing: rank live servers by hash(key, server).
  std::vector<std::pair<std::uint64_t, cluster::NodeId>> ranked;
  ranked.reserve(servers_.size());
  const std::uint64_t kh = string_hash(key.full());
  for (cluster::NodeId node : servers_) {
    if (dead_servers_.count(node) != 0) continue;
    ranked.emplace_back(mix_hash(kh ^ (0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(node + 1))),
                        node);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<cluster::NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [hash, node] : ranked) out.push_back(node);
  return out;
}

int ObjectStore::placed_copies() const {
  const int wanted = config_.redundancy == Redundancy::kReplication
                         ? config_.replicas
                         : config_.ec_data + config_.ec_parity;
  return std::min<int>(wanted, static_cast<int>(servers_.size()));
}

ObjectStore::Health ObjectStore::health(const ObjectMeta& meta) const {
  const int live = static_cast<int>(meta.replicas.size());
  const int min_live =
      config_.redundancy == Redundancy::kReplication ? 1 : config_.ec_data;
  if (live < min_live) return Health::kLost;
  if (live < placed_copies()) return Health::kDegraded;
  return Health::kFull;
}

std::vector<cluster::NodeId> ObjectStore::locate(const ObjectKey& key) const {
  auto ranked = ranked_servers(key);
  const int count =
      std::min<int>(placed_copies(), static_cast<int>(ranked.size()));
  ranked.resize(static_cast<std::size_t>(count));
  return ranked;
}

cluster::NodeId ObjectStore::choose_replica(
    const std::vector<cluster::NodeId>& replicas,
    cluster::NodeId client) const {
  for (cluster::NodeId r : replicas) {
    if (r == client) return r;
  }
  const auto& topo = fabric_.topology();
  for (cluster::NodeId r : replicas) {
    if (topo.same_rack(r, client)) return r;
  }
  return replicas.front();
}

void ObjectStore::write_durable(cluster::NodeId server, const ObjectKey& key,
                                util::Bytes size,
                                std::function<void()> on_done) {
  // A write that raced a crash lands nowhere: the crash handler already
  // dropped this server from the object's replica set (and wiped its
  // accounting), so skipping keeps durable_used consistent even if the
  // server has since recovered empty.
  if (dead_servers_.count(server) != 0) {
    sim_.defer(std::move(on_done));
    return;
  }
  if (auto it = objects_.find(key); it != objects_.end()) {
    const auto& replicas = it->second.replicas;
    if (std::find(replicas.begin(), replicas.end(), server) ==
        replicas.end()) {
      sim_.defer(std::move(on_done));
      return;
    }
  }
  ServerState& state = server_state(server);
  io_.device(server, state.durable_device)
      .submit(IoKind::kWrite, size, std::move(on_done));
  state.durable_used += size;
  if (config_.cache_on_put) {
    state.cache->put(key.full(), size);
  }
}

util::Bytes ObjectStore::per_server_bytes(util::Bytes size) const {
  if (config_.redundancy == Redundancy::kReplication) return size;
  return (size + config_.ec_data - 1) / config_.ec_data;  // fragment
}

void ObjectStore::put(cluster::NodeId client, const ObjectKey& key,
                      util::Bytes size, PutCallback on_done) {
  if (!bucket_exists(key.bucket)) {
    throw std::invalid_argument("bucket does not exist: " + key.bucket);
  }
  if (size < 0) throw std::invalid_argument("put: negative size");
  const auto replicas = locate(key);
  const std::size_t min_live =
      config_.redundancy == Redundancy::kReplication
          ? 1
          : static_cast<std::size_t>(config_.ec_data);
  if (replicas.size() < min_live) {
    throw std::runtime_error("put: not enough live storage servers");
  }
  const util::TimeNs start = sim_.now();
  metrics_.count("put_requests");
  metrics_.count("put_bytes", size);
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.put");
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "key", key.full());
    tracer_->annotate(span, "bytes", std::to_string(size));
  }

  // If overwriting, reclaim the old durable bytes first.
  int version = 0;
  if (auto it = objects_.find(key); it != objects_.end()) {
    for (cluster::NodeId r : it->second.replicas) {
      ServerState& state = server_state(r);
      state.durable_used -= it->second.per_server_bytes;
      state.cache->erase(key.full());
    }
    if (health(it->second) == Health::kDegraded) shift_underrep(-1);
    version = it->second.version + 1;
  }
  const util::Bytes per_server = per_server_bytes(size);
  objects_[key] = ObjectMeta{size, per_server, replicas, version};
  // Born degraded when live servers cannot host every copy.
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }

  auto remaining = std::make_shared<int>(static_cast<int>(replicas.size()));
  auto finish = [this, remaining, start, span,
                 cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    metrics_.observe("put_latency_us",
                     (sim_.now() - start) / util::kMicrosecond);
    trace::end_span(tracer_, span);
    cb();
  };
  const cluster::NodeId primary = replicas.front();

  if (config_.redundancy == Redundancy::kReplication) {
    // Metadata round, then client -> primary transfer, then fan-out
    // replication in parallel. Done when every replica is durable.
    sim_.after(config_.metadata_latency, [this, client, primary, key, size,
                                          replicas, span, finish]() mutable {
      trace::ScopedContext tctx(tracer_, span);
      fabric_.transfer(client, primary, size, [this, primary, key, size,
                                               replicas, span,
                                               finish]() mutable {
        write_durable(primary, key, size, finish);
        trace::ScopedContext tctx(tracer_, span);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          const cluster::NodeId replica = replicas[i];
          fabric_.transfer(primary, replica, size,
                           [this, replica, key, size, finish]() mutable {
                             write_durable(replica, key, size, finish);
                           });
        }
      });
    });
    return;
  }

  // Erasure coding: client -> primary (full body); primary encodes, then
  // distributes k+m-1 fragments; every fragment must be durable.
  const auto encode_ns = static_cast<util::TimeNs>(
      std::ceil(static_cast<double>(size) * config_.ec_ns_per_byte));
  sim_.after(config_.metadata_latency, [this, client, primary, key, size,
                                        per_server, encode_ns, replicas,
                                        span, finish]() mutable {
    trace::ScopedContext tctx(tracer_, span);
    fabric_.transfer(client, primary, size, [this, primary, key, per_server,
                                             encode_ns, replicas, span,
                                             finish]() mutable {
      sim_.after(encode_ns, [this, primary, key, per_server, replicas, span,
                             finish]() mutable {
        write_durable(primary, key, per_server, finish);
        trace::ScopedContext tctx(tracer_, span);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          const cluster::NodeId peer = replicas[i];
          fabric_.transfer(primary, peer, per_server,
                           [this, peer, key, per_server, finish]() mutable {
                             write_durable(peer, key, per_server, finish);
                           });
        }
      });
    });
  });
}

void ObjectStore::get(cluster::NodeId client, const ObjectKey& key,
                      GetCallback on_done) {
  const util::TimeNs start = sim_.now();
  metrics_.count("get_requests");
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.get");
  if (span != trace::kNoSpan) tracer_->annotate(span, "key", key.full());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    metrics_.count("get_misses");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "miss");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  if (health(it->second) == Health::kLost) {
    // Every replica (or too many fragments) died with its node: the
    // object is unreadable until someone re-writes it.
    metrics_.count("get_lost");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "lost");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  if (health(it->second) == Health::kDegraded) {
    metrics_.count("degraded_reads");
    if (span != trace::kNoSpan) tracer_->annotate(span, "degraded", "1");
  }
  const util::Bytes size = it->second.size;
  if (config_.redundancy == Redundancy::kErasure) {
    get_erasure(client, key, it->second, start, span, std::move(on_done));
    return;
  }
  const cluster::NodeId server =
      choose_replica(it->second.replicas, client);
  ServerState& state = server_state(server);

  // Which tier serves the read?
  std::string tier_name;
  if (config_.cache_on_get) {
    if (auto tier = state.cache->get(key.full()); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
      state.cache->put(key.full(), size);  // admit on miss
    }
  } else {
    if (auto tier = state.cache->peek(key.full()); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
    }
  }
  metrics_.count("get_tier_" + tier_name);
  metrics_.count("get_bytes", size);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "tier", tier_name);
    tracer_->annotate(span, "bytes", std::to_string(size));
  }

  GetResult result;
  result.found = true;
  result.size = size;
  result.served_by = server;
  result.tier = tier_name;

  sim_.after(config_.metadata_latency, [this, server, client, size, tier_name,
                                        start, result, span,
                                        cb = std::move(on_done)]() mutable {
    io_.device(server, tier_name)
        .submit(IoKind::kRead, size,
                [this, server, client, size, start, result, span,
                 cb = std::move(cb)]() mutable {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(
                      server, client, size,
                      [this, start, result, span,
                       cb = std::move(cb)]() mutable {
                        metrics_.observe(
                            "get_latency_us",
                            (sim_.now() - start) / util::kMicrosecond);
                        trace::end_span(tracer_, span);
                        cb(result);
                      });
                });
  });
}

void ObjectStore::get_erasure(cluster::NodeId client, const ObjectKey& key,
                              const ObjectMeta& meta, util::TimeNs start,
                              trace::SpanId span, GetCallback on_done) {
  // Rank fragment holders by proximity to the client; read the k nearest.
  std::vector<cluster::NodeId> ranked = meta.replicas;
  const auto& topo = fabric_.topology();
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     auto rank = [&](cluster::NodeId n) {
                       if (n == client) return 0;
                       return topo.same_rack(n, client) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });
  const int k = config_.ec_data;
  ranked.resize(static_cast<std::size_t>(k));

  auto result = std::make_shared<GetResult>();
  result->found = true;
  result->size = meta.size;
  result->served_by = ranked.front();
  const util::Bytes fragment = meta.per_server_bytes;
  const auto decode_ns = static_cast<util::TimeNs>(std::ceil(
      static_cast<double>(meta.size) * config_.ec_ns_per_byte));

  // Tier is reported for the nearest fragment; all fragment reads go
  // through their server's cache independently.
  auto remaining = std::make_shared<int>(k);
  auto finish = [this, remaining, start, decode_ns, result, span,
                 cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    sim_.after(decode_ns,
               [this, start, result, span, cb = std::move(cb)]() mutable {
                 metrics_.observe("get_latency_us",
                                  (sim_.now() - start) / util::kMicrosecond);
                 trace::end_span(tracer_, span);
                 cb(*result);
               });
  };
  for (int i = 0; i < k; ++i) {
    const cluster::NodeId server = ranked[static_cast<std::size_t>(i)];
    ServerState& state = server_state(server);
    std::string tier_name;
    if (config_.cache_on_get) {
      if (auto tier = state.cache->get(key.full()); tier.has_value()) {
        tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
      } else {
        tier_name = state.durable_device;
        state.cache->put(key.full(), fragment);
      }
    } else {
      tier_name = state.durable_device;
    }
    metrics_.count("get_tier_" + tier_name);
    metrics_.count("get_bytes", fragment);
    if (i == 0) result->tier = tier_name;
    sim_.after(config_.metadata_latency, [this, server, client, fragment,
                                          tier_name, span, finish]() mutable {
      io_.device(server, tier_name)
          .submit(IoKind::kRead, fragment,
                  [this, server, client, fragment, span, finish]() mutable {
                    trace::ScopedContext tctx(tracer_, span);
                    fabric_.transfer(server, client, fragment, finish);
                  });
    });
  }
}

void ObjectStore::preload(const ObjectKey& key, util::Bytes size,
                          bool warm_cache) {
  if (!bucket_exists(key.bucket)) create_bucket(key.bucket);
  if (size < 0) throw std::invalid_argument("preload: negative size");
  if (exists(key)) {
    throw std::invalid_argument("preload: object already exists: " +
                                key.full());
  }
  const auto replicas = locate(key);
  const util::Bytes per_server = per_server_bytes(size);
  objects_[key] = ObjectMeta{size, per_server, replicas};
  for (cluster::NodeId r : replicas) {
    ServerState& state = server_state(r);
    state.durable_used += per_server;
    if (warm_cache) state.cache->put(key.full(), per_server);
  }
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }
}

void ObjectStore::remove(cluster::NodeId /*client*/, const ObjectKey& key,
                         PutCallback on_done) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    for (cluster::NodeId r : it->second.replicas) {
      ServerState& state = server_state(r);
      state.durable_used -= it->second.per_server_bytes;
      state.cache->erase(key.full());
    }
    if (health(it->second) == Health::kDegraded) shift_underrep(-1);
    objects_.erase(it);
    metrics_.count("delete_requests");
  }
  sim_.after(config_.metadata_latency, std::move(on_done));
}

bool ObjectStore::exists(const ObjectKey& key) const {
  return objects_.count(key) != 0;
}

std::optional<util::Bytes> ObjectStore::object_size(
    const ObjectKey& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second.size;
}

std::vector<std::string> ObjectStore::list(const std::string& bucket,
                                           const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [key, meta] : objects_) {
    if (key.bucket != bucket) continue;
    if (key.name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back(key.name);
  }
  return out;
}

std::int64_t ObjectStore::initiate_multipart(const ObjectKey& key) {
  if (!bucket_exists(key.bucket)) {
    throw std::invalid_argument("bucket does not exist: " + key.bucket);
  }
  const std::int64_t id = next_upload_id_++;
  uploads_[id] = MultipartUpload{key, 0, {}};
  return id;
}

void ObjectStore::upload_part(cluster::NodeId client, std::int64_t upload_id,
                              int part_number, util::Bytes size,
                              PutCallback on_done) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    throw std::invalid_argument("unknown multipart upload");
  }
  if (it->second.parts.count(part_number) != 0) {
    throw std::invalid_argument("duplicate part number");
  }
  it->second.parts[part_number] = size;
  it->second.total += size;
  // Parts stream to the primary replica of the final key.
  const auto replicas = locate(it->second.key);
  const cluster::NodeId primary = replicas.front();
  sim_.after(config_.metadata_latency,
             [this, client, primary, size, cb = std::move(on_done)]() mutable {
               fabric_.transfer(client, primary, size, std::move(cb));
             });
}

void ObjectStore::complete_multipart(std::int64_t upload_id,
                                     PutCallback on_done) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    throw std::invalid_argument("unknown multipart upload");
  }
  const ObjectKey key = it->second.key;
  const util::Bytes total = it->second.total;
  const auto replicas = locate(key);
  uploads_.erase(it);
  const util::Bytes per_server = per_server_bytes(total);
  int version = 0;
  if (auto old = objects_.find(key); old != objects_.end()) {
    if (health(old->second) == Health::kDegraded) shift_underrep(-1);
    version = old->second.version + 1;
  }
  objects_[key] = ObjectMeta{total, per_server, replicas, version};
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }

  // Assembly: parts already live on the primary, which persists its
  // share and fans out full copies (replication) or fragments (EC).
  const auto encode_ns =
      config_.redundancy == Redundancy::kErasure
          ? static_cast<util::TimeNs>(std::ceil(static_cast<double>(total) *
                                                config_.ec_ns_per_byte))
          : 0;
  auto remaining = std::make_shared<int>(static_cast<int>(replicas.size()));
  auto finish = [remaining, cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    cb();
  };
  const cluster::NodeId primary = replicas.front();
  sim_.after(config_.metadata_latency + encode_ns,
             [this, primary, key, per_server, replicas, finish]() mutable {
               write_durable(primary, key, per_server, finish);
               for (std::size_t i = 1; i < replicas.size(); ++i) {
                 const cluster::NodeId peer = replicas[i];
                 fabric_.transfer(
                     primary, peer, per_server,
                     [this, peer, key, per_server, finish]() mutable {
                       write_durable(peer, key, per_server, finish);
                     });
               }
             });
}

void ObjectStore::shift_underrep(int delta) {
  underrep_ns_ += static_cast<double>(underrep_count_) *
                  static_cast<double>(sim_.now() - underrep_last_);
  underrep_last_ = sim_.now();
  underrep_count_ += delta;
  metrics_.set_gauge("under_replicated_objects", underrep_count_);
}

double ObjectStore::under_replicated_object_seconds() const {
  const double pending = static_cast<double>(underrep_count_) *
                         static_cast<double>(sim_.now() - underrep_last_);
  return (underrep_ns_ + pending) / 1e9;
}

util::Bytes ObjectStore::expected_durable_bytes(cluster::NodeId server) const {
  util::Bytes total = 0;
  for (const auto& [key, meta] : objects_) {
    for (cluster::NodeId r : meta.replicas) {
      if (r == server) total += meta.per_server_bytes;
    }
  }
  return total;
}

void ObjectStore::handle_node_failure(cluster::NodeId node) {
  auto state_it = server_states_.find(node);
  if (state_it == server_states_.end()) return;  // not a storage server
  if (!dead_servers_.insert(node).second) return;
  metrics_.count("server_failures");
  // Media loss: everything the server held is gone, cache included.
  state_it->second.durable_used = 0;
  state_it->second.cache->clear();
  for (auto& [key, meta] : objects_) {
    auto rep = std::find(meta.replicas.begin(), meta.replicas.end(), node);
    if (rep == meta.replicas.end()) continue;
    const Health before = health(meta);
    meta.replicas.erase(rep);
    ++meta.version;
    const Health after = health(meta);
    if (before == Health::kDegraded && after != Health::kDegraded) {
      shift_underrep(-1);
    } else if (before != Health::kDegraded && after == Health::kDegraded) {
      shift_underrep(+1);
    }
    if (after == Health::kLost && before != Health::kLost) {
      ++lost_objects_;
      metrics_.count("objects_lost");
      metrics_.count("bytes_lost", meta.size);
    }
    if (after == Health::kDegraded) enqueue_repair(key);
  }
}

void ObjectStore::handle_node_recovery(cluster::NodeId node) {
  if (server_states_.count(node) == 0) return;
  if (dead_servers_.erase(node) == 0) return;
  metrics_.count("server_recoveries");
  // The node rejoins empty; repairs that had no live target re-arm.
  for (const ObjectKey& key : repair_stalled_) enqueue_repair(key);
  repair_stalled_.clear();
  pump_repairs();
}

void ObjectStore::enqueue_repair(const ObjectKey& key) {
  if (!config_.repair) return;
  if (!repair_queued_.insert(key).second) return;
  repair_queue_.push_back(key);
  // Detection + scheduling grace before the repair traffic starts.
  sim_.after(config_.repair_delay, [this] { pump_repairs(); });
}

void ObjectStore::pump_repairs() {
  while (repairs_in_flight_ < config_.repair_concurrency &&
         !repair_queue_.empty()) {
    const ObjectKey key = repair_queue_.front();
    repair_queue_.pop_front();
    repair_queued_.erase(key);
    start_repair(key);
  }
}

void ObjectStore::start_repair(const ObjectKey& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return;  // deleted while queued
  ObjectMeta& meta = it->second;
  if (health(meta) != Health::kDegraded) return;  // repaired or lost
  // Target: the best-ranked live server not already holding a copy.
  cluster::NodeId target = cluster::kInvalidNode;
  for (cluster::NodeId node : ranked_servers(key)) {
    if (std::find(meta.replicas.begin(), meta.replicas.end(), node) ==
        meta.replicas.end()) {
      target = node;
      break;
    }
  }
  if (target == cluster::kInvalidNode) {
    repair_stalled_.insert(key);  // every live server already holds one
    return;
  }
  const int version = meta.version;
  const util::Bytes fragment = meta.per_server_bytes;
  ++repairs_in_flight_;
  metrics_.count("repairs_started");
  // Re-replication runs in the background, so the span is a root.
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.repair",
                        trace::kNoSpan);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "key", key.full());
    tracer_->annotate(span, "target", std::to_string(target));
  }

  if (config_.redundancy == Redundancy::kReplication) {
    // Stream one surviving copy to the target.
    const cluster::NodeId source = choose_replica(meta.replicas, target);
    io_.device(source, server_state(source).durable_device)
        .submit(IoKind::kRead, fragment,
                [this, key, source, target, fragment, version, span] {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(source, target, fragment,
                                   [this, key, target, version, span] {
                                     trace::end_span(tracer_, span);
                                     finish_repair(key, target, version);
                                   });
                });
    return;
  }
  // Erasure coding: rebuild the fragment from k survivors, decode at
  // the target, then persist.
  const int k = config_.ec_data;
  std::vector<cluster::NodeId> sources = meta.replicas;
  const auto& topo = fabric_.topology();
  std::stable_sort(sources.begin(), sources.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     auto rank = [&](cluster::NodeId n) {
                       if (n == target) return 0;
                       return topo.same_rack(n, target) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });
  sources.resize(static_cast<std::size_t>(k));
  const auto decode_ns = static_cast<util::TimeNs>(std::ceil(
      static_cast<double>(meta.size) * config_.ec_ns_per_byte));
  auto remaining = std::make_shared<int>(k);
  for (cluster::NodeId source : sources) {
    io_.device(source, server_state(source).durable_device)
        .submit(IoKind::kRead, fragment,
                [this, key, source, target, fragment, version, remaining,
                 decode_ns, span] {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(
                      source, target, fragment,
                      [this, key, target, version, remaining, decode_ns,
                       span] {
                        if (--*remaining > 0) return;
                        sim_.after(decode_ns,
                                   [this, key, target, version, span] {
                                     trace::end_span(tracer_, span);
                                     finish_repair(key, target, version);
                                   });
                      });
                });
  }
}

void ObjectStore::finish_repair(const ObjectKey& key, cluster::NodeId target,
                                int version) {
  --repairs_in_flight_;
  auto it = objects_.find(key);
  const bool valid =
      it != objects_.end() && it->second.version == version &&
      dead_servers_.count(target) == 0 &&
      std::find(it->second.replicas.begin(), it->second.replicas.end(),
                target) == it->second.replicas.end();
  if (!valid) {
    // The replica set moved (another failure, overwrite, delete) or the
    // target died mid-repair; whoever moved it re-queued as needed.
    metrics_.count("repairs_abandoned");
    if (it != objects_.end() && health(it->second) == Health::kDegraded) {
      enqueue_repair(key);
    }
    pump_repairs();
    return;
  }
  ObjectMeta& meta = it->second;
  const Health before = health(meta);
  meta.replicas.push_back(target);
  ++meta.version;
  write_durable(target, key, meta.per_server_bytes, [] {});
  const Health after = health(meta);
  if (before == Health::kDegraded && after != Health::kDegraded) {
    shift_underrep(-1);
  }
  metrics_.count("objects_repaired");
  if (after == Health::kDegraded) enqueue_repair(key);  // more copies lost
  pump_repairs();
}

util::Bytes ObjectStore::durable_bytes(cluster::NodeId server) const {
  return server_state(server).durable_used;
}

const TieredCache& ObjectStore::cache(cluster::NodeId server) const {
  return *server_state(server).cache;
}

}  // namespace evolve::storage
