#include "storage/object_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace evolve::storage {

namespace {

/// Stateless 64-bit mix for rendezvous hashing.
std::uint64_t mix_hash(std::uint64_t seed) {
  return util::splitmix64(seed);
}

std::uint64_t string_hash(const std::string& text) {
  // FNV-1a, then a SplitMix finalizer for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix_hash(h);
}

}  // namespace

ObjectStore::ObjectStore(sim::Simulation& sim,
                         const cluster::Cluster& cluster, net::Fabric& fabric,
                         IoSubsystem& io, std::vector<cluster::NodeId> servers,
                         ObjectStoreConfig config)
    : sim_(sim),
      cluster_(cluster),
      fabric_(fabric),
      io_(io),
      servers_(std::move(servers)),
      config_(config),
      repair_rng_(config.repair_seed) {
  if (servers_.empty()) {
    throw std::invalid_argument("object store needs at least one server");
  }
  if (config_.replicas < 1) {
    throw std::invalid_argument("replicas must be >= 1");
  }
  if (config_.redundancy == Redundancy::kErasure) {
    if (config_.ec_data < 1 || config_.ec_parity < 0) {
      throw std::invalid_argument("bad erasure-coding parameters");
    }
    if (config_.ec_data + config_.ec_parity >
        static_cast<int>(servers_.size())) {
      throw std::invalid_argument(
          "erasure coding needs at least k+m storage servers");
    }
  }
  if (config_.cache_capacity_fraction <= 0 ||
      config_.cache_capacity_fraction > 1.0) {
    throw std::invalid_argument("cache_capacity_fraction must be in (0, 1]");
  }
  for (cluster::NodeId node : servers_) {
    const auto& spec = cluster_.node(node);
    if (spec.devices.empty()) {
      throw std::invalid_argument("storage server '" + spec.name +
                                  "' has no devices");
    }
    ServerState state;
    state.node = node;
    state.durable_device = spec.devices.back().name;
    std::vector<TierConfig> tiers;
    for (std::size_t i = 0; i + 1 < spec.devices.size(); ++i) {
      tiers.push_back(TierConfig{
          spec.devices[i].name,
          static_cast<util::Bytes>(
              static_cast<double>(spec.devices[i].capacity) *
              config_.cache_capacity_fraction)});
      state.cache_tiers.push_back(spec.devices[i].name);
    }
    if (tiers.empty()) {
      // Single-device server: the durable device is also the only "cache".
      tiers.push_back(TierConfig{spec.devices.back().name, 0});
      state.cache_tiers.push_back(spec.devices.back().name);
    }
    state.cache = std::make_unique<TieredCache>(std::move(tiers));
    server_states_.emplace(node, std::move(state));
  }
}

ObjectStore::ServerState& ObjectStore::server_state(cluster::NodeId node) {
  auto it = server_states_.find(node);
  if (it == server_states_.end()) {
    throw std::out_of_range("node is not a storage server");
  }
  return it->second;
}

const ObjectStore::ServerState& ObjectStore::server_state(
    cluster::NodeId node) const {
  auto it = server_states_.find(node);
  if (it == server_states_.end()) {
    throw std::out_of_range("node is not a storage server");
  }
  return it->second;
}

void ObjectStore::create_bucket(const std::string& bucket) {
  if (bucket.empty()) throw std::invalid_argument("empty bucket name");
  buckets_[bucket] = true;
}

bool ObjectStore::bucket_exists(const std::string& bucket) const {
  return buckets_.count(bucket) != 0;
}

std::vector<cluster::NodeId> ObjectStore::ranked_servers(
    const ObjectKey& key) const {
  // Rendezvous hashing: rank live servers by hash(key, server).
  std::vector<std::pair<std::uint64_t, cluster::NodeId>> ranked;
  ranked.reserve(servers_.size());
  const std::uint64_t kh = string_hash(key.full());
  for (cluster::NodeId node : servers_) {
    if (dead_servers_.count(node) != 0) continue;
    ranked.emplace_back(mix_hash(kh ^ (0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(node + 1))),
                        node);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<cluster::NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [hash, node] : ranked) out.push_back(node);
  return out;
}

int ObjectStore::placed_copies() const {
  const int wanted = config_.redundancy == Redundancy::kReplication
                         ? config_.replicas
                         : config_.ec_data + config_.ec_parity;
  return std::min<int>(wanted, static_cast<int>(servers_.size()));
}

int ObjectStore::min_live_copies() const {
  return config_.redundancy == Redundancy::kReplication ? 1
                                                        : config_.ec_data;
}

ObjectStore::Health ObjectStore::health(const ObjectMeta& meta) const {
  // Lost means fewer than k live fragments (i.e. more than m dead) for
  // erasure coding, or zero live replicas for replication. Exactly m
  // dead fragments is still recoverable.
  const int live = static_cast<int>(meta.replicas.size());
  if (live < min_live_copies()) return Health::kLost;
  if (live < placed_copies()) return Health::kDegraded;
  return Health::kFull;
}

int ObjectStore::at_risk_fragments(const ObjectMeta& meta) const {
  const int live = static_cast<int>(meta.replicas.size());
  if (live < min_live_copies()) return 0;  // lost outright, not at risk
  return std::max(0, placed_copies() - live);
}

std::vector<cluster::NodeId> ObjectStore::place_copies(
    const ObjectKey& key) const {
  auto ranked = ranked_servers(key);
  const int count =
      std::min<int>(placed_copies(), static_cast<int>(ranked.size()));
  if (!config_.rack_aware_placement) {
    ranked.resize(static_cast<std::size_t>(count));
    return ranked;
  }
  // Failure-domain spread: walk the HRW order but let no rack exceed
  // ceil(copies / live racks), so a whole-rack outage kills at most
  // that many fragments of any one stripe.
  std::set<int> live_racks;
  for (cluster::NodeId node : ranked) {
    live_racks.insert(cluster_.node(node).rack);
  }
  const int racks = std::max<int>(1, static_cast<int>(live_racks.size()));
  const int cap = (count + racks - 1) / racks;
  std::vector<cluster::NodeId> out;
  out.reserve(static_cast<std::size_t>(count));
  std::map<int, int> per_rack;
  for (cluster::NodeId node : ranked) {
    if (static_cast<int>(out.size()) == count) break;
    int& used = per_rack[cluster_.node(node).rack];
    if (used >= cap) continue;
    ++used;
    out.push_back(node);
  }
  // Uneven rack sizes can make the cap infeasible (a rack with fewer
  // live servers than its share); top up in plain HRW order.
  for (cluster::NodeId node : ranked) {
    if (static_cast<int>(out.size()) == count) break;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

std::vector<cluster::NodeId> ObjectStore::locate(const ObjectKey& key) const {
  return place_copies(key);
}

cluster::NodeId ObjectStore::choose_replica(
    const std::vector<cluster::NodeId>& replicas,
    cluster::NodeId client) const {
  for (cluster::NodeId r : replicas) {
    if (r == client) return r;
  }
  const auto& topo = fabric_.topology();
  for (cluster::NodeId r : replicas) {
    if (topo.same_rack(r, client)) return r;
  }
  return replicas.front();
}

void ObjectStore::write_durable(cluster::NodeId server, const ObjectKey& key,
                                util::Bytes size,
                                std::function<void()> on_done) {
  // A write that raced a crash lands nowhere: the crash handler already
  // dropped this server from the object's replica set (and wiped its
  // accounting), so skipping keeps durable_used consistent even if the
  // server has since recovered empty.
  if (dead_servers_.count(server) != 0) {
    sim_.defer(std::move(on_done));
    return;
  }
  if (auto it = objects_.find(key); it != objects_.end()) {
    const auto& replicas = it->second.replicas;
    if (std::find(replicas.begin(), replicas.end(), server) ==
        replicas.end()) {
      sim_.defer(std::move(on_done));
      return;
    }
  }
  ServerState& state = server_state(server);
  io_.device(server, state.durable_device)
      .submit(IoKind::kWrite, size, std::move(on_done));
  state.durable_used += size;
  if (config_.cache_on_put) {
    state.cache->put(key.full(), size);
  }
}

util::Bytes ObjectStore::per_server_bytes(util::Bytes size) const {
  if (config_.redundancy == Redundancy::kReplication) return size;
  return (size + config_.ec_data - 1) / config_.ec_data;  // fragment
}

void ObjectStore::put(cluster::NodeId client, const ObjectKey& key,
                      util::Bytes size, PutCallback on_done) {
  if (!bucket_exists(key.bucket)) {
    throw std::invalid_argument("bucket does not exist: " + key.bucket);
  }
  if (size < 0) throw std::invalid_argument("put: negative size");
  const auto replicas = locate(key);
  if (static_cast<int>(replicas.size()) < min_live_copies()) {
    throw std::runtime_error("put: not enough live storage servers");
  }
  const util::TimeNs start = sim_.now();
  metrics_.count("put_requests");
  metrics_.count("put_bytes", size);
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.put");
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "key", key.full());
    tracer_->annotate(span, "bytes", std::to_string(size));
  }

  // If overwriting, reclaim the old durable bytes first.
  int version = 0;
  if (auto it = objects_.find(key); it != objects_.end()) {
    for (cluster::NodeId r : it->second.replicas) {
      ServerState& state = server_state(r);
      state.durable_used -= it->second.per_server_bytes;
      state.cache->erase(key.full());
      note_replica_removed(r);
    }
    if (health(it->second) == Health::kDegraded) shift_underrep(-1);
    shift_at_risk(-at_risk_fragments(it->second));
    version = it->second.version + 1;
    purge_corrupted(key);  // the overwrite replaces any rotten payload
  }
  const util::Bytes per_server = per_server_bytes(size);
  std::vector<int> fragments(replicas.size());
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    fragments[i] = static_cast<int>(i);
  }
  objects_[key] =
      ObjectMeta{size, per_server, replicas, std::move(fragments), version};
  // Born degraded when live servers cannot host every copy.
  shift_at_risk(at_risk_fragments(objects_[key]));
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }

  auto remaining = std::make_shared<int>(static_cast<int>(replicas.size()));
  auto finish = [this, remaining, start, span,
                 cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    metrics_.observe("put_latency_us",
                     (sim_.now() - start) / util::kMicrosecond);
    trace::end_span(tracer_, span);
    cb();
  };
  const cluster::NodeId primary = replicas.front();

  if (config_.redundancy == Redundancy::kReplication) {
    // Metadata round, then client -> primary transfer, then fan-out
    // replication in parallel. Done when every replica is durable.
    sim_.after(config_.metadata_latency, [this, client, primary, key, size,
                                          replicas, span, finish]() mutable {
      trace::ScopedContext tctx(tracer_, span);
      fabric_.transfer(client, primary, size, [this, primary, key, size,
                                               replicas, span,
                                               finish]() mutable {
        write_durable(primary, key, size, finish);
        trace::ScopedContext tctx(tracer_, span);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          const cluster::NodeId replica = replicas[i];
          fabric_.transfer(primary, replica, size,
                           [this, replica, key, size, finish]() mutable {
                             write_durable(replica, key, size, finish);
                           });
        }
      });
    });
    return;
  }

  // Erasure coding: client -> primary (full body); primary encodes, then
  // distributes k+m-1 fragments; every fragment must be durable.
  const auto encode_ns = static_cast<util::TimeNs>(
      std::ceil(static_cast<double>(size) * config_.ec_ns_per_byte));
  sim_.after(config_.metadata_latency, [this, client, primary, key, size,
                                        per_server, encode_ns, replicas,
                                        span, finish]() mutable {
    trace::ScopedContext tctx(tracer_, span);
    fabric_.transfer(client, primary, size, [this, primary, key, per_server,
                                             encode_ns, replicas, span,
                                             finish]() mutable {
      sim_.after(encode_ns, [this, primary, key, per_server, replicas, span,
                             finish]() mutable {
        write_durable(primary, key, per_server, finish);
        trace::ScopedContext tctx(tracer_, span);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          const cluster::NodeId peer = replicas[i];
          fabric_.transfer(primary, peer, per_server,
                           [this, peer, key, per_server, finish]() mutable {
                             write_durable(peer, key, per_server, finish);
                           });
        }
      });
    });
  });
}

void ObjectStore::get(cluster::NodeId client, const ObjectKey& key,
                      GetCallback on_done) {
  const util::TimeNs start = sim_.now();
  metrics_.count("get_requests");
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.get");
  if (span != trace::kNoSpan) tracer_->annotate(span, "key", key.full());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    metrics_.count("get_misses");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "miss");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  if (health(it->second) == Health::kLost) {
    // Every replica (or too many fragments) died with its node: the
    // object is unreadable until someone re-writes it.
    metrics_.count("get_lost");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "lost");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  const bool degraded_object = health(it->second) == Health::kDegraded;
  if (degraded_object) {
    metrics_.count("degraded_reads");
    if (span != trace::kNoSpan) tracer_->annotate(span, "degraded", "1");
  }
  const util::Bytes size = it->second.size;
  if (config_.redundancy == Redundancy::kErasure) {
    get_erasure(client, key, it->second, start, span, std::move(on_done));
    return;
  }
  // Replication path: the primary read (branch 0) optionally races a
  // hedge read (branch 1) fired after a latency-quantile delay.
  auto race = std::make_shared<ReadRace>();
  race->key = key;
  race->client = client;
  race->size = size;
  race->start = start;
  race->span = span;
  race->cb = std::move(on_done);
  race->degraded = degraded_object;
  race->inflight = 1;
  const cluster::NodeId server = choose_replica(it->second.replicas, client);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "bytes", std::to_string(size));
  }
  sim_.after(config_.metadata_latency,
             [this, race, server] { run_read_branch(race, 0, server); });

  if (config_.hedged_reads && it->second.replicas.size() >= 2) {
    sim_.after(hedge_delay(), [this, race] {
      if (race->decided) return;
      auto obj = objects_.find(race->key);
      if (obj == objects_.end()) return;
      // Prefer an untried clean replica; fall back to any untried one
      // (the checksum path fails over if it turns out rotten).
      cluster::NodeId target = cluster::kInvalidNode;
      for (cluster::NodeId r : obj->second.replicas) {
        if (race->tried.count(r) != 0) continue;
        if (replica_corrupted(race->key, r)) continue;
        target = r;
        break;
      }
      if (target == cluster::kInvalidNode) {
        for (cluster::NodeId r : obj->second.replicas) {
          if (race->tried.count(r) == 0) {
            target = r;
            break;
          }
        }
      }
      if (target == cluster::kInvalidNode) return;
      ++hedges_launched_;
      metrics_.count("hedges_launched");
      race->hedged = true;
      race->hedge_span = trace::begin_span(
          tracer_, trace::Layer::kStorage, "store.hedge", race->span);
      if (race->hedge_span != trace::kNoSpan) {
        tracer_->annotate(race->hedge_span, "server", std::to_string(target));
      }
      ++race->inflight;
      run_read_branch(race, 1, target);
    });
  }
}

void ObjectStore::run_read_branch(const std::shared_ptr<ReadRace>& race,
                                  int branch, cluster::NodeId server) {
  race->tried.insert(server);
  ServerState& state = server_state(server);
  const util::Bytes size = race->size;
  const std::string full = race->key.full();

  // Which tier serves the read?
  std::string tier_name;
  if (config_.cache_on_get) {
    if (auto tier = state.cache->get(full); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
      state.cache->put(full, size);  // admit on miss
    }
  } else {
    if (auto tier = state.cache->peek(full); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
    }
  }
  metrics_.count("get_tier_" + tier_name);
  metrics_.count("get_bytes", size);
  if (branch == 0 && race->span != trace::kNoSpan) {
    tracer_->annotate(race->span, "tier", tier_name);
  }

  GetResult& result = race->result[branch];
  result.found = true;
  result.size = size;
  result.served_by = server;
  result.tier = tier_name;

  io_.device(server, tier_name)
      .submit(IoKind::kRead, size, [this, race, branch, server] {
        if (race->decided) {
          --race->inflight;
          return;
        }
        // Checksum verification as the payload leaves the media.
        if (replica_corrupted(race->key, server)) {
          if (config_.checksum_reads) {
            ++checksum_failures_;
            metrics_.count("checksum_failures");
            drop_corrupted_replica(race->key, server);
            // Transparent failover to a clean replica we haven't tried.
            cluster::NodeId next = cluster::kInvalidNode;
            if (auto obj = objects_.find(race->key); obj != objects_.end()) {
              for (cluster::NodeId r : obj->second.replicas) {
                if (race->tried.count(r) == 0 &&
                    !replica_corrupted(race->key, r)) {
                  next = r;
                  break;
                }
              }
            }
            if (next != cluster::kInvalidNode) {
              run_read_branch(race, branch, next);
              return;
            }
            abandon_read_branch(race);
            return;
          }
          // No verification: the rotten payload is served as-is.
          race->result[branch].corrupted = true;
        }
        trace::ScopedContext tctx(
            tracer_, branch == 1 ? race->hedge_span : race->span);
        race->flow[branch] =
            fabric_.transfer(server, race->client, race->size,
                             [this, race, branch] {
                               finish_read_branch(race, branch);
                             });
        race->flow_active[branch] = true;
      });
}

void ObjectStore::finish_read_branch(const std::shared_ptr<ReadRace>& race,
                                     int branch) {
  race->flow_active[branch] = false;
  --race->inflight;
  if (race->decided) return;
  race->decided = true;

  GetResult result = race->result[branch];
  result.hedged = race->hedged;
  result.hedge_won = branch == 1;
  result.degraded = race->degraded;
  if (branch == 1) {
    ++hedge_wins_;
    metrics_.count("hedge_wins");
    if (race->span != trace::kNoSpan) {
      tracer_->annotate(race->span, "hedge_won", "1");
      tracer_->annotate(race->span, "tier", result.tier);
    }
  }
  if (result.corrupted) {
    ++corrupted_reads_surfaced_;
    metrics_.count("corrupted_reads_surfaced");
    if (race->span != trace::kNoSpan) {
      tracer_->annotate(race->span, "corrupted", "1");
    }
  }
  // The loser is cancelled: an active flow is torn off the fabric (its
  // bytes were wasted); a branch still in device I/O just fizzles.
  if (race->inflight > 0) {
    const int other = 1 - branch;
    ++hedges_cancelled_;
    metrics_.count("hedges_cancelled");
    if (race->flow_active[other]) {
      fabric_.cancel(race->flow[other]);
      race->flow_active[other] = false;
      --race->inflight;  // its completion callback will never run
      hedge_wasted_bytes_ += race->size;
      metrics_.count("hedge_wasted_bytes", race->size);
    }
  }
  trace::end_span(tracer_, race->hedge_span);
  const auto latency_us = (sim_.now() - race->start) / util::kMicrosecond;
  metrics_.observe("get_latency_us", latency_us);
  if (result.degraded) metrics_.observe("degraded_get_latency_us", latency_us);
  trace::end_span(tracer_, race->span);
  race->cb(result);
}

void ObjectStore::abandon_read_branch(const std::shared_ptr<ReadRace>& race) {
  --race->inflight;
  if (race->decided || race->inflight > 0) return;
  // Every branch ran out of clean replicas: with verification on the
  // read reports not-found rather than surfacing rotten bytes.
  race->decided = true;
  metrics_.count("get_unreadable");
  if (race->span != trace::kNoSpan) {
    tracer_->annotate(race->span, "result", "unreadable");
  }
  trace::end_span(tracer_, race->hedge_span);
  trace::end_span(tracer_, race->span);
  race->cb(GetResult{});
}

void ObjectStore::read_block(cluster::NodeId client, const ObjectKey& key,
                             util::Bytes bytes, GetCallback on_done) {
  if (bytes <= 0) throw std::invalid_argument("read_block: bytes <= 0");
  const util::TimeNs start = sim_.now();
  metrics_.count("block_read_requests");
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.read_block");
  if (span != trace::kNoSpan) tracer_->annotate(span, "key", key.full());
  auto it = objects_.find(key);
  if (it == objects_.end() || health(it->second) == Health::kLost) {
    metrics_.count(it == objects_.end() ? "get_misses" : "get_lost");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "miss");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  auto read = std::make_shared<BlockRead>();
  read->key = key;
  read->client = client;
  read->block = std::min(bytes, it->second.size);
  read->start = start;
  read->span = span;
  read->cb = std::move(on_done);
  read->degraded = health(it->second) == Health::kDegraded;
  if (read->degraded) {
    metrics_.count("degraded_reads");
    if (span != trace::kNoSpan) tracer_->annotate(span, "degraded", "1");
  }
  metrics_.count("block_read_bytes", read->block);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "bytes", std::to_string(read->block));
  }
  const cluster::NodeId server = choose_replica(it->second.replicas, client);
  sim_.after(config_.metadata_latency,
             [this, read, server] { run_block_read(read, server); });
}

void ObjectStore::run_block_read(const std::shared_ptr<BlockRead>& read,
                                 cluster::NodeId server) {
  read->tried.insert(server);
  ServerState& state = server_state(server);
  // Served from whichever tier already holds the object — a point read
  // should not evict whole-object cache residents, so it never admits.
  std::string tier_name;
  if (auto tier = state.cache->peek(read->key.full()); tier.has_value()) {
    tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
  } else {
    tier_name = state.durable_device;
  }
  metrics_.count("block_read_tier_" + tier_name);
  io_.device(server, tier_name)
      .submit(IoKind::kRead, read->block, [this, read, server, tier_name] {
        if (replica_corrupted(read->key, server)) {
          if (config_.checksum_reads) {
            ++checksum_failures_;
            metrics_.count("checksum_failures");
            drop_corrupted_replica(read->key, server);
            cluster::NodeId next = cluster::kInvalidNode;
            if (auto obj = objects_.find(read->key); obj != objects_.end()) {
              for (cluster::NodeId r : obj->second.replicas) {
                if (read->tried.count(r) == 0 &&
                    !replica_corrupted(read->key, r)) {
                  next = r;
                  break;
                }
              }
            }
            if (next != cluster::kInvalidNode) {
              run_block_read(read, next);
              return;
            }
            metrics_.count("get_unreadable");
            if (read->span != trace::kNoSpan) {
              tracer_->annotate(read->span, "result", "unreadable");
            }
            trace::end_span(tracer_, read->span);
            read->cb(GetResult{});
            return;
          }
          read->corrupted = true;
        }
        trace::ScopedContext tctx(tracer_, read->span);
        fabric_.transfer(
            server, read->client, read->block, [this, read, server,
                                                tier_name] {
              GetResult result;
              result.found = true;
              result.size = read->block;
              result.served_by = server;
              result.tier = tier_name;
              result.corrupted = read->corrupted;
              result.degraded = read->degraded;
              if (result.corrupted) {
                ++corrupted_reads_surfaced_;
                metrics_.count("corrupted_reads_surfaced");
              }
              metrics_.observe("block_read_latency_us",
                               (sim_.now() - read->start) / util::kMicrosecond);
              trace::end_span(tracer_, read->span);
              read->cb(result);
            });
      });
}

util::TimeNs ObjectStore::hedge_delay() const {
  // Hedge after our own observed GET p-quantile (floor until the
  // histogram has warmed up).
  util::TimeNs delay = config_.hedge_min_delay;
  if (metrics_.has_histogram("get_latency_us")) {
    const metrics::Histogram& lat = metrics_.histogram("get_latency_us");
    if (lat.count() >= config_.hedge_min_samples) {
      delay = std::max<util::TimeNs>(
          lat.percentile(config_.hedge_quantile) * util::kMicrosecond,
          config_.hedge_min_delay);
    }
  }
  return delay;
}

void ObjectStore::get_erasure(cluster::NodeId client, const ObjectKey& key,
                              const ObjectMeta& meta, util::TimeNs start,
                              trace::SpanId span, GetCallback on_done) {
  // Rank surviving fragment holders by proximity to the client and read
  // the k nearest. Any k of the k+m fragments reconstruct, so a
  // degraded stripe (up to m fragments dead) still completes — the read
  // set just includes parity fragments and pays the reconstruction cost.
  std::vector<std::pair<cluster::NodeId, int>> ranked;
  ranked.reserve(meta.replicas.size());
  for (std::size_t i = 0; i < meta.replicas.size(); ++i) {
    ranked.emplace_back(meta.replicas[i], meta.fragments[i]);
  }
  // Captures by value: the hedge callback runs this after get_erasure's
  // frame is gone.
  auto proximity = [this, client](cluster::NodeId n) {
    if (n == client) return 0;
    return fabric_.topology().same_rack(n, client) ? 1 : 2;
  };
  const int k = config_.ec_data;
  // Data fragments first (a pure-data read set skips the reconstruction
  // math), nearest first within each class; parity fills in only for
  // dead or rotten data fragments.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const auto& a, const auto& b) {
                     const bool pa = a.second >= k;
                     const bool pb = b.second >= k;
                     if (pa != pb) return pb;
                     return proximity(a.first) < proximity(b.first);
                   });

  auto read = std::make_shared<EcRead>();
  read->key = key;
  read->client = client;
  read->size = meta.size;
  read->fragment_bytes = meta.per_server_bytes;
  read->start = start;
  read->span = span;
  read->cb = std::move(on_done);
  read->meta_degraded =
      static_cast<int>(meta.replicas.size()) < placed_copies();
  read->waiting = k;
  read->served_by = ranked.front().first;
  for (int i = 0; i < k; ++i) {
    launch_ec_branch(read, ranked[static_cast<std::size_t>(i)].first,
                     ranked[static_cast<std::size_t>(i)].second,
                     /*hedge=*/false);
  }

  if (config_.hedged_reads &&
      static_cast<int>(meta.replicas.size()) > k) {
    // Straggler hedge: after the latency-quantile delay, read one extra
    // surviving fragment — whichever k fragments land first win.
    sim_.after(hedge_delay(), [this, read, proximity] {
      if (read->done || read->hedged) return;
      auto obj = objects_.find(read->key);
      if (obj == objects_.end()) return;
      const ObjectMeta& now_meta = obj->second;
      cluster::NodeId target = cluster::kInvalidNode;
      int target_fragment = -1;
      int best_rank = 3;
      bool best_clean = false;
      for (std::size_t i = 0; i < now_meta.replicas.size(); ++i) {
        const cluster::NodeId r = now_meta.replicas[i];
        if (read->tried.count(r) != 0) continue;
        const bool clean = !replica_corrupted(read->key, r);
        const int rank = proximity(r);
        // Prefer a clean fragment, then the nearest one.
        if (target == cluster::kInvalidNode || (clean && !best_clean) ||
            (clean == best_clean && rank < best_rank)) {
          target = r;
          target_fragment = now_meta.fragments[i];
          best_rank = rank;
          best_clean = clean;
        }
      }
      if (target == cluster::kInvalidNode) return;
      ++hedges_launched_;
      metrics_.count("hedges_launched");
      read->hedged = true;
      read->hedge_span = trace::begin_span(
          tracer_, trace::Layer::kStorage, "store.hedge", read->span);
      if (read->hedge_span != trace::kNoSpan) {
        tracer_->annotate(read->hedge_span, "server", std::to_string(target));
      }
      launch_ec_branch(read, target, target_fragment, /*hedge=*/true);
    });
  }
}

void ObjectStore::launch_ec_branch(const std::shared_ptr<EcRead>& read,
                                   cluster::NodeId server, int fragment,
                                   bool hedge) {
  const int branch = static_cast<int>(read->branches.size());
  read->branches.push_back(EcBranch{server, fragment, 0, false, false, hedge});
  read->tried.insert(server);
  ++read->inflight;
  ServerState& state = server_state(server);
  const util::Bytes bytes = read->fragment_bytes;
  const std::string full = read->key.full();
  std::string tier_name;
  if (config_.cache_on_get) {
    if (auto tier = state.cache->get(full); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
      state.cache->put(full, bytes);
    }
  } else {
    tier_name = state.durable_device;
  }
  metrics_.count("get_tier_" + tier_name);
  metrics_.count("get_bytes", bytes);
  if (read->tier.empty()) {
    read->tier = tier_name;
    if (read->span != trace::kNoSpan) {
      tracer_->annotate(read->span, "tier", tier_name);
    }
  }
  sim_.after(config_.metadata_latency, [this, read, branch, server,
                                        tier_name] {
    io_.device(server, tier_name)
        .submit(IoKind::kRead, read->fragment_bytes, [this, read, branch,
                                                      server] {
          if (read->done) {
            --read->inflight;
            return;
          }
          // Checksum verification as the fragment leaves the media.
          if (replica_corrupted(read->key, server)) {
            if (config_.checksum_reads) {
              ++checksum_failures_;
              metrics_.count("checksum_failures");
              drop_corrupted_replica(read->key, server);
              // Fail over to the nearest untried clean survivor: any
              // other fragment substitutes in the decode.
              cluster::NodeId next = cluster::kInvalidNode;
              int next_fragment = -1;
              if (auto obj = objects_.find(read->key);
                  obj != objects_.end()) {
                for (std::size_t i = 0; i < obj->second.replicas.size();
                     ++i) {
                  const cluster::NodeId r = obj->second.replicas[i];
                  if (read->tried.count(r) != 0) continue;
                  if (replica_corrupted(read->key, r)) continue;
                  next = r;
                  next_fragment = obj->second.fragments[i];
                  break;
                }
              }
              if (next != cluster::kInvalidNode) {
                const bool was_hedge = read->branches[branch].hedge;
                --read->inflight;  // replaced by the failover branch
                launch_ec_branch(read, next, next_fragment, was_hedge);
                return;
              }
              abandon_ec_branch(read);
              return;
            }
            // No verification: the rotten fragment corrupts the decode.
            read->corrupted = true;
          }
          trace::ScopedContext tctx(tracer_, read->branches[branch].hedge
                                                 ? read->hedge_span
                                                 : read->span);
          read->branches[branch].flow =
              fabric_.transfer(server, read->client, read->fragment_bytes,
                               [this, read, branch] {
                                 finish_ec_branch(read, branch);
                               });
          read->branches[branch].flow_active = true;
        });
  });
}

void ObjectStore::finish_ec_branch(const std::shared_ptr<EcRead>& read,
                                   int branch) {
  EcBranch& b = read->branches[static_cast<std::size_t>(branch)];
  b.flow_active = false;
  --read->inflight;
  if (read->done) return;
  b.landed = true;
  if (--read->waiting > 0) return;
  complete_ec_read(read);
}

void ObjectStore::abandon_ec_branch(const std::shared_ptr<EcRead>& read) {
  --read->inflight;
  if (read->done || read->inflight >= read->waiting) return;
  // Fewer clean fragments than k remain in flight: with verification on
  // the read reports not-found rather than decoding rotten bytes. Any
  // still-running branches fizzle against the done flag.
  read->done = true;
  metrics_.count("get_unreadable");
  if (read->span != trace::kNoSpan) {
    tracer_->annotate(read->span, "result", "unreadable");
  }
  trace::end_span(tracer_, read->hedge_span);
  trace::end_span(tracer_, read->span);
  read->cb(GetResult{});
}

void ObjectStore::complete_ec_read(const std::shared_ptr<EcRead>& read) {
  read->done = true;
  // Cancel straggler transfers (only possible when a hedge over-
  // provisioned the read set); branches still in device I/O fizzle.
  for (EcBranch& b : read->branches) {
    if (b.landed || !b.flow_active) continue;
    fabric_.cancel(b.flow);
    b.flow_active = false;
    --read->inflight;
    ++hedges_cancelled_;
    metrics_.count("hedges_cancelled");
    hedge_wasted_bytes_ += read->fragment_bytes;
    metrics_.count("hedge_wasted_bytes", read->fragment_bytes);
  }
  bool hedge_won = false;
  int parity_used = 0;
  for (const EcBranch& b : read->branches) {
    if (!b.landed) continue;
    if (b.hedge) hedge_won = true;
    if (b.fragment >= config_.ec_data) ++parity_used;
  }
  const bool reconstructed = parity_used > 0;
  if (hedge_won) {
    ++hedge_wins_;
    metrics_.count("hedge_wins");
    if (read->span != trace::kNoSpan) {
      tracer_->annotate(read->span, "hedge_won", "1");
    }
  }
  trace::end_span(tracer_, read->hedge_span);

  GetResult result;
  result.found = true;
  result.size = read->size;
  result.served_by = read->served_by;
  result.tier = read->tier;
  result.hedged = read->hedged;
  result.hedge_won = hedge_won;
  result.corrupted = read->corrupted;
  result.degraded = read->meta_degraded || reconstructed;
  result.parity_fragments_used = parity_used;
  if (result.corrupted) {
    ++corrupted_reads_surfaced_;
    metrics_.count("corrupted_reads_surfaced");
    if (read->span != trace::kNoSpan) {
      tracer_->annotate(read->span, "corrupted", "1");
    }
  }
  // Decode at the client: stripe assembly, plus the Reed-Solomon
  // recovery math when parity stood in for dead data fragments.
  auto decode_ns = static_cast<util::TimeNs>(std::ceil(
      static_cast<double>(read->size) * config_.ec_ns_per_byte));
  if (reconstructed) {
    decode_ns += static_cast<util::TimeNs>(std::ceil(
        static_cast<double>(read->size) * config_.ec_reconstruct_ns_per_byte));
    metrics_.count("ec_reconstructed_reads");
    if (read->span != trace::kNoSpan) {
      tracer_->annotate(read->span, "reconstructed", "1");
      tracer_->annotate(read->span, "parity_fragments",
                        std::to_string(parity_used));
    }
  }
  sim_.after(decode_ns, [this, read, result] {
    const auto latency_us = (sim_.now() - read->start) / util::kMicrosecond;
    metrics_.observe("get_latency_us", latency_us);
    if (result.degraded) {
      metrics_.observe("degraded_get_latency_us", latency_us);
    }
    trace::end_span(tracer_, read->span);
    read->cb(result);
  });
}

void ObjectStore::preload(const ObjectKey& key, util::Bytes size,
                          bool warm_cache) {
  if (!bucket_exists(key.bucket)) create_bucket(key.bucket);
  if (size < 0) throw std::invalid_argument("preload: negative size");
  if (exists(key)) {
    throw std::invalid_argument("preload: object already exists: " +
                                key.full());
  }
  const auto replicas = locate(key);
  const util::Bytes per_server = per_server_bytes(size);
  std::vector<int> fragments(replicas.size());
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    fragments[i] = static_cast<int>(i);
  }
  objects_[key] =
      ObjectMeta{size, per_server, replicas, std::move(fragments), 0};
  for (cluster::NodeId r : replicas) {
    ServerState& state = server_state(r);
    state.durable_used += per_server;
    if (warm_cache) state.cache->put(key.full(), per_server);
  }
  shift_at_risk(at_risk_fragments(objects_[key]));
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }
}

void ObjectStore::remove(cluster::NodeId /*client*/, const ObjectKey& key,
                         PutCallback on_done) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    for (cluster::NodeId r : it->second.replicas) {
      ServerState& state = server_state(r);
      state.durable_used -= it->second.per_server_bytes;
      state.cache->erase(key.full());
      note_replica_removed(r);
    }
    if (health(it->second) == Health::kDegraded) shift_underrep(-1);
    shift_at_risk(-at_risk_fragments(it->second));
    purge_corrupted(key);
    objects_.erase(it);
    metrics_.count("delete_requests");
  }
  sim_.after(config_.metadata_latency, std::move(on_done));
}

bool ObjectStore::exists(const ObjectKey& key) const {
  return objects_.count(key) != 0;
}

std::optional<util::Bytes> ObjectStore::object_size(
    const ObjectKey& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second.size;
}

std::vector<std::string> ObjectStore::list(const std::string& bucket,
                                           const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [key, meta] : objects_) {
    if (key.bucket != bucket) continue;
    if (key.name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back(key.name);
  }
  return out;
}

std::int64_t ObjectStore::initiate_multipart(const ObjectKey& key) {
  if (!bucket_exists(key.bucket)) {
    throw std::invalid_argument("bucket does not exist: " + key.bucket);
  }
  const std::int64_t id = next_upload_id_++;
  uploads_[id] = MultipartUpload{key, 0, {}};
  return id;
}

void ObjectStore::upload_part(cluster::NodeId client, std::int64_t upload_id,
                              int part_number, util::Bytes size,
                              PutCallback on_done) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    throw std::invalid_argument("unknown multipart upload");
  }
  if (it->second.parts.count(part_number) != 0) {
    throw std::invalid_argument("duplicate part number");
  }
  it->second.parts[part_number] = size;
  it->second.total += size;
  // Parts stream to the primary replica of the final key.
  const auto replicas = locate(it->second.key);
  const cluster::NodeId primary = replicas.front();
  sim_.after(config_.metadata_latency,
             [this, client, primary, size, cb = std::move(on_done)]() mutable {
               fabric_.transfer(client, primary, size, std::move(cb));
             });
}

void ObjectStore::complete_multipart(std::int64_t upload_id,
                                     PutCallback on_done) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    throw std::invalid_argument("unknown multipart upload");
  }
  const ObjectKey key = it->second.key;
  const util::Bytes total = it->second.total;
  const auto replicas = locate(key);
  uploads_.erase(it);
  const util::Bytes per_server = per_server_bytes(total);
  int version = 0;
  if (auto old = objects_.find(key); old != objects_.end()) {
    if (health(old->second) == Health::kDegraded) shift_underrep(-1);
    shift_at_risk(-at_risk_fragments(old->second));
    version = old->second.version + 1;
    purge_corrupted(key);
  }
  std::vector<int> fragments(replicas.size());
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    fragments[i] = static_cast<int>(i);
  }
  objects_[key] =
      ObjectMeta{total, per_server, replicas, std::move(fragments), version};
  shift_at_risk(at_risk_fragments(objects_[key]));
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }

  // Assembly: parts already live on the primary, which persists its
  // share and fans out full copies (replication) or fragments (EC).
  const auto encode_ns =
      config_.redundancy == Redundancy::kErasure
          ? static_cast<util::TimeNs>(std::ceil(static_cast<double>(total) *
                                                config_.ec_ns_per_byte))
          : 0;
  auto remaining = std::make_shared<int>(static_cast<int>(replicas.size()));
  auto finish = [remaining, cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    cb();
  };
  const cluster::NodeId primary = replicas.front();
  sim_.after(config_.metadata_latency + encode_ns,
             [this, primary, key, per_server, replicas, finish]() mutable {
               write_durable(primary, key, per_server, finish);
               for (std::size_t i = 1; i < replicas.size(); ++i) {
                 const cluster::NodeId peer = replicas[i];
                 fabric_.transfer(
                     primary, peer, per_server,
                     [this, peer, key, per_server, finish]() mutable {
                       write_durable(peer, key, per_server, finish);
                     });
               }
             });
}

void ObjectStore::shift_underrep(int delta) {
  underrep_ns_ += static_cast<double>(underrep_count_) *
                  static_cast<double>(sim_.now() - underrep_last_);
  underrep_last_ = sim_.now();
  underrep_count_ += delta;
  metrics_.set_gauge("under_replicated_objects", underrep_count_);
}

double ObjectStore::under_replicated_object_seconds() const {
  const double pending = static_cast<double>(underrep_count_) *
                         static_cast<double>(sim_.now() - underrep_last_);
  return (underrep_ns_ + pending) / 1e9;
}

void ObjectStore::shift_at_risk(int delta) {
  if (delta == 0) return;
  at_risk_ns_ += static_cast<double>(at_risk_count_) *
                 static_cast<double>(sim_.now() - at_risk_last_);
  at_risk_last_ = sim_.now();
  at_risk_count_ += delta;
  metrics_.set_gauge("at_risk_fragments", at_risk_count_);
}

double ObjectStore::at_risk_fragment_seconds() const {
  const double pending = static_cast<double>(at_risk_count_) *
                         static_cast<double>(sim_.now() - at_risk_last_);
  return (at_risk_ns_ + pending) / 1e9;
}

DurabilityStats ObjectStore::durability_stats() const {
  DurabilityStats stats;
  for (const auto& [key, meta] : objects_) {
    switch (health(meta)) {
      case Health::kFull:
        ++stats.objects_full;
        break;
      case Health::kDegraded:
        ++stats.objects_degraded;
        stats.missing_fragments += at_risk_fragments(meta);
        break;
      case Health::kLost:
        ++stats.objects_lost;
        break;
    }
  }
  stats.at_risk_fragment_seconds = at_risk_fragment_seconds();
  stats.objects_lost_total = lost_objects_;
  return stats;
}

void ObjectStore::note_health_change(const ObjectKey& key,
                                     const ObjectMeta& meta, Health before,
                                     int risk_before) {
  const Health after = health(meta);
  if (before == Health::kDegraded && after != Health::kDegraded) {
    shift_underrep(-1);
  } else if (before != Health::kDegraded && after == Health::kDegraded) {
    shift_underrep(+1);
  }
  shift_at_risk(at_risk_fragments(meta) - risk_before);
  if (after == Health::kLost && before != Health::kLost) {
    ++lost_objects_;
    metrics_.count("objects_lost");
    metrics_.count("bytes_lost", meta.size);
  }
  if (after == Health::kDegraded) enqueue_repair(key);
}

util::Bytes ObjectStore::expected_durable_bytes(cluster::NodeId server) const {
  util::Bytes total = 0;
  for (const auto& [key, meta] : objects_) {
    for (cluster::NodeId r : meta.replicas) {
      if (r == server) total += meta.per_server_bytes;
    }
  }
  return total;
}

void ObjectStore::suspect_node(cluster::NodeId node) {
  if (server_states_.count(node) == 0) return;  // not a storage server
  if (dead_servers_.count(node) != 0) return;   // already confirmed dead
  if (config_.repair_hysteresis <= 0) {
    handle_node_failure(node);
    return;
  }
  if (suspects_.count(node) != 0) return;
  metrics_.count("servers_suspected");
  // Replicas on a suspect server sit one step closer to loss for the
  // whole wait: the at-risk integral accrues even though no repair has
  // been queued yet.
  int held = 0;
  for (const auto& [key, meta] : objects_) {
    held += static_cast<int>(
        std::count(meta.replicas.begin(), meta.replicas.end(), node));
  }
  SuspectState st;
  st.at_risk = held;
  st.escalate = sim_.after(config_.repair_hysteresis, [this, node] {
    // The window expired with no sign of life: treat it as real loss.
    auto it = suspects_.find(node);
    if (it == suspects_.end()) return;
    shift_at_risk(-it->second.at_risk);
    suspects_.erase(it);
    metrics_.count("suspects_escalated");
    handle_node_failure(node);
  });
  suspects_[node] = st;
  shift_at_risk(held);
}

void ObjectStore::clear_suspect(cluster::NodeId node) {
  auto it = suspects_.find(node);
  if (it == suspects_.end()) return;
  sim_.cancel(it->second.escalate);
  shift_at_risk(-it->second.at_risk);
  suspects_.erase(it);
  ++suspects_cleared_;
  metrics_.count("suspects_cleared");
}

void ObjectStore::note_replica_removed(cluster::NodeId node) {
  auto it = suspects_.find(node);
  if (it == suspects_.end() || it->second.at_risk <= 0) return;
  --it->second.at_risk;
  shift_at_risk(-1);
}

void ObjectStore::handle_node_failure(cluster::NodeId node) {
  auto state_it = server_states_.find(node);
  if (state_it == server_states_.end()) return;  // not a storage server
  if (auto sus = suspects_.find(node); sus != suspects_.end()) {
    // Confirmed failure overtakes the hysteresis window: stop the
    // suspect accrual (the per-object loop below re-counts the risk).
    sim_.cancel(sus->second.escalate);
    shift_at_risk(-sus->second.at_risk);
    suspects_.erase(sus);
  }
  if (!dead_servers_.insert(node).second) return;
  metrics_.count("server_failures");
  // Media loss: everything the server held is gone, cache included —
  // and so is any bit-rot it carried.
  state_it->second.durable_used = 0;
  state_it->second.cache->clear();
  for (auto corrupt = corrupted_replicas_.begin();
       corrupt != corrupted_replicas_.end();) {
    if (corrupt->second == node) {
      scrub_inflight_.erase(*corrupt);
      corrupt = corrupted_replicas_.erase(corrupt);
    } else {
      ++corrupt;
    }
  }
  for (auto& [key, meta] : objects_) {
    auto rep = std::find(meta.replicas.begin(), meta.replicas.end(), node);
    if (rep == meta.replicas.end()) continue;
    const Health before = health(meta);
    const int risk_before = at_risk_fragments(meta);
    meta.fragments.erase(meta.fragments.begin() +
                         (rep - meta.replicas.begin()));
    meta.replicas.erase(rep);
    ++meta.version;
    note_health_change(key, meta, before, risk_before);
  }
}

void ObjectStore::handle_node_recovery(cluster::NodeId node) {
  if (server_states_.count(node) == 0) return;
  clear_suspect(node);  // came back within the window: no rebuild needed
  if (dead_servers_.erase(node) == 0) return;
  metrics_.count("server_recoveries");
  // The node rejoins empty; repairs that had no live target re-arm.
  for (const ObjectKey& key : repair_stalled_) enqueue_repair(key);
  repair_stalled_.clear();
  // With jitter configured the re-enqueues above scheduled their own
  // staggered pumps — skipping the synchronous pump here is what spreads
  // the post-recovery repair wave out in time.
  if (config_.repair_jitter <= 0) pump_repairs();
}

bool ObjectStore::corrupt_replica(const ObjectKey& key,
                                  cluster::NodeId server) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  const auto& replicas = it->second.replicas;
  if (std::find(replicas.begin(), replicas.end(), server) == replicas.end()) {
    return false;
  }
  if (!corrupted_replicas_.insert({key, server}).second) return false;
  metrics_.count("replicas_corrupted");
  arm_scrub();
  return true;
}

int ObjectStore::corrupt_random_replicas(std::uint64_t seed, int count,
                                         bool spare_last_clean) {
  // Candidates in deterministic metadata order, sampled with a seeded RNG.
  std::vector<std::pair<ObjectKey, cluster::NodeId>> candidates;
  for (const auto& [key, meta] : objects_) {
    for (cluster::NodeId r : meta.replicas) {
      if (corrupted_replicas_.count({key, r}) != 0) continue;
      candidates.emplace_back(key, r);
    }
  }
  util::Rng rng(seed);
  int corrupted = 0;
  while (corrupted < count && !candidates.empty()) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    const auto [key, server] = candidates[pick];
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    if (spare_last_clean) {
      int clean = 0;
      for (cluster::NodeId r : objects_.at(key).replicas) {
        if (corrupted_replicas_.count({key, r}) == 0) ++clean;
      }
      // Keep the object recoverable: one clean copy for replication,
      // k clean fragments for erasure coding.
      if (clean <= min_live_copies()) continue;
    }
    corrupted_replicas_.insert({key, server});
    metrics_.count("replicas_corrupted");
    ++corrupted;
  }
  if (corrupted > 0) arm_scrub();
  return corrupted;
}

void ObjectStore::drop_corrupted_replica(const ObjectKey& key,
                                         cluster::NodeId server) {
  corrupted_replicas_.erase({key, server});
  auto it = objects_.find(key);
  if (it == objects_.end()) return;
  ObjectMeta& meta = it->second;
  auto rep = std::find(meta.replicas.begin(), meta.replicas.end(), server);
  if (rep == meta.replicas.end()) return;
  const Health before = health(meta);
  const int risk_before = at_risk_fragments(meta);
  meta.fragments.erase(meta.fragments.begin() + (rep - meta.replicas.begin()));
  meta.replicas.erase(rep);
  ++meta.version;
  if (dead_servers_.count(server) == 0) {
    ServerState& state = server_state(server);
    state.durable_used -= meta.per_server_bytes;
    state.cache->erase(key.full());
  }
  note_replica_removed(server);
  metrics_.count("corrupted_replicas_dropped");
  note_health_change(key, meta, before, risk_before);
}

void ObjectStore::purge_corrupted(const ObjectKey& key) {
  auto it = corrupted_replicas_.lower_bound(
      {key, std::numeric_limits<cluster::NodeId>::min()});
  while (it != corrupted_replicas_.end() && !(key < it->first) &&
         !(it->first < key)) {
    scrub_inflight_.erase(*it);
    it = corrupted_replicas_.erase(it);
  }
}

void ObjectStore::arm_scrub() {
  if (!config_.scrub || scrub_armed_) return;
  // Only corruption not already under verification needs a pass; the
  // scrubber stays idle otherwise, so the simulation drains.
  if (corrupted_replicas_.size() <= scrub_inflight_.size()) return;
  scrub_armed_ = true;
  sim_.after(config_.scrub_interval, [this] { scrub_pass(); });
}

void ObjectStore::scrub_pass() {
  scrub_armed_ = false;
  // Oracle-guided scrub: the simulator models the verification I/O and
  // the repair traffic for rotten replicas without simulating full-disk
  // scans of clean data.
  int budget = config_.scrub_replicas_per_pass;
  auto it = corrupted_replicas_.begin();
  while (it != corrupted_replicas_.end() && budget > 0) {
    if (scrub_inflight_.count(*it) != 0) {
      ++it;
      continue;
    }
    const auto [key, server] = *it;
    const auto obj = objects_.find(key);
    const bool live =
        obj != objects_.end() &&
        std::find(obj->second.replicas.begin(), obj->second.replicas.end(),
                  server) != obj->second.replicas.end() &&
        dead_servers_.count(server) == 0;
    if (!live) {
      // Stale entry (object deleted, replica already dropped, or the
      // server crashed): nothing on media left to verify.
      it = corrupted_replicas_.erase(it);
      continue;
    }
    --budget;
    scrub_inflight_.insert(*it);
    ++replicas_scrubbed_;
    metrics_.count("replicas_scrubbed");
    const trace::SpanId span = trace::begin_span(
        tracer_, trace::Layer::kStorage, "store.scrub", trace::kNoSpan);
    if (span != trace::kNoSpan) {
      tracer_->annotate(span, "key", key.full());
      tracer_->annotate(span, "server", std::to_string(server));
    }
    // Verification read off the durable device, then drop + re-replicate.
    io_.device(server, server_state(server).durable_device)
        .submit(IoKind::kRead, obj->second.per_server_bytes,
                [this, key, server, span] {
                  scrub_inflight_.erase({key, server});
                  drop_corrupted_replica(key, server);
                  trace::end_span(tracer_, span);
                  arm_scrub();
                });
    ++it;
  }
  arm_scrub();  // re-arm if more corruption than this pass could take
}

void ObjectStore::enqueue_repair(const ObjectKey& key) {
  if (!config_.repair) return;
  if (!repair_queued_.insert(key).second) return;
  // Detection + scheduling grace before the repair traffic starts; the
  // optional seeded jitter keeps a mass-recovery repair wave from firing
  // as one synchronized pump.
  util::TimeNs delay = config_.repair_delay;
  if (config_.repair_jitter > 0) {
    delay = util::jittered(delay, repair_rng_, config_.repair_jitter);
  }
  sim_.after(delay, [this] { pump_repairs(); });
}

void ObjectStore::pump_repairs() {
  if (repair_breaker_ != nullptr && !repair_queued_.empty() &&
      !repair_breaker_->allow()) {
    // Breaker open: the repair path keeps failing (no viable targets,
    // churn under the transfers). Defer the whole scan instead of
    // launching more rebuild traffic; one pending probe event re-pumps.
    if (!repair_pump_armed_) {
      repair_pump_armed_ = true;
      sim_.after(std::max(config_.repair_delay, util::kMillisecond), [this] {
        repair_pump_armed_ = false;
        pump_repairs();
      });
    }
    return;
  }
  while (repairs_in_flight_ < config_.repair_concurrency &&
         !repair_queued_.empty()) {
    // Risk-first: repair the object with the fewest surviving spare
    // copies (live minus the minimum to stay readable) — an EC stripe
    // one fragment from loss beats a freshly degraded one. Ties break
    // in key order because the scan follows the ordered set.
    auto best = repair_queued_.end();
    int best_spares = std::numeric_limits<int>::max();
    for (auto it = repair_queued_.begin(); it != repair_queued_.end();) {
      const auto obj = objects_.find(*it);
      if (obj == objects_.end() || health(obj->second) != Health::kDegraded) {
        // Deleted, repaired, or lost while queued: drop the entry.
        it = repair_queued_.erase(it);
        continue;
      }
      const int spares = static_cast<int>(obj->second.replicas.size()) -
                         min_live_copies();
      if (spares < best_spares) {
        best_spares = spares;
        best = it;
      }
      ++it;
    }
    if (best == repair_queued_.end()) return;
    const ObjectKey key = *best;
    repair_queued_.erase(best);
    start_repair(key);
  }
}

void ObjectStore::start_repair(const ObjectKey& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return;  // deleted while queued
  ObjectMeta& meta = it->second;
  if (health(meta) != Health::kDegraded) return;  // repaired or lost
  const int version = meta.version;
  ++repairs_in_flight_;
  metrics_.count("repairs_started");
  // Admission throttle: a token-bucket edge over the fabric bytes this
  // repair will inject (one copy for replication, k source fragments
  // for an EC reconstruction). The repair holds its concurrency slot
  // while it waits, so a rebuild storm is paced below the cap instead
  // of stampeding foreground traffic.
  util::TimeNs wait = 0;
  if (config_.rebuild_bandwidth_bytes_per_s > 0) {
    const util::Bytes bytes =
        config_.redundancy == Redundancy::kReplication
            ? meta.per_server_bytes
            : meta.per_server_bytes * config_.ec_data;
    const auto duration = static_cast<util::TimeNs>(
        std::ceil(static_cast<double>(bytes) * 1e9 /
                  config_.rebuild_bandwidth_bytes_per_s));
    const util::TimeNs admit = std::max(rebuild_admit_at_, sim_.now());
    rebuild_admit_at_ = admit + duration;
    wait = admit - sim_.now();
    if (wait > 0) {
      rebuild_throttle_wait_ns_ += wait;
      metrics_.count("repairs_throttled");
    }
  }
  if (wait > 0) {
    sim_.after(wait, [this, key, version] {
      begin_repair_transfers(key, version);
    });
  } else {
    begin_repair_transfers(key, version);
  }
}

void ObjectStore::begin_repair_transfers(const ObjectKey& key, int version) {
  // Revalidate after the admission wait: the object may have been
  // deleted, fully repaired, or lost while the repair sat in the
  // throttle. The slot is released on every abort path.
  auto it = objects_.find(key);
  if (it == objects_.end() || health(it->second) != Health::kDegraded ||
      it->second.version != version) {
    --repairs_in_flight_;
    metrics_.count("repairs_abandoned");
    if (it != objects_.end() && health(it->second) == Health::kDegraded) {
      enqueue_repair(key);
    }
    pump_repairs();
    return;
  }
  ObjectMeta& meta = it->second;
  // Target: the best-ranked live server not already holding a copy,
  // respecting the per-rack placement cap (relaxed only when no rack-
  // compliant target exists, mirroring place_copies).
  const auto ranked = ranked_servers(key);
  cluster::NodeId target = cluster::kInvalidNode;
  if (config_.rack_aware_placement) {
    std::set<int> live_racks;
    for (cluster::NodeId node : ranked) {
      live_racks.insert(cluster_.node(node).rack);
    }
    const int racks = std::max<int>(1, static_cast<int>(live_racks.size()));
    const int cap = (placed_copies() + racks - 1) / racks;
    std::map<int, int> per_rack;
    for (cluster::NodeId r : meta.replicas) {
      ++per_rack[cluster_.node(r).rack];
    }
    for (cluster::NodeId node : ranked) {
      if (std::find(meta.replicas.begin(), meta.replicas.end(), node) !=
          meta.replicas.end()) {
        continue;
      }
      if (per_rack[cluster_.node(node).rack] >= cap) continue;
      target = node;
      break;
    }
  }
  if (target == cluster::kInvalidNode) {
    for (cluster::NodeId node : ranked) {
      if (std::find(meta.replicas.begin(), meta.replicas.end(), node) ==
          meta.replicas.end()) {
        target = node;
        break;
      }
    }
  }
  if (target == cluster::kInvalidNode) {
    // Every live server already holds a copy; retry on the next recovery.
    --repairs_in_flight_;
    repair_stalled_.insert(key);
    if (repair_breaker_ != nullptr) repair_breaker_->record_failure();
    pump_repairs();
    return;
  }
  const util::Bytes fragment = meta.per_server_bytes;
  // Re-replication runs in the background, so the span is a root.
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.repair",
                        trace::kNoSpan);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "key", key.full());
    tracer_->annotate(span, "target", std::to_string(target));
  }

  if (config_.redundancy == Redundancy::kReplication) {
    // Stream one surviving copy to the target.
    const cluster::NodeId source = choose_replica(meta.replicas, target);
    io_.device(source, server_state(source).durable_device)
        .submit(IoKind::kRead, fragment,
                [this, key, source, target, fragment, version, span] {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(source, target, fragment,
                                   [this, key, target, version, span] {
                                     trace::end_span(tracer_, span);
                                     finish_repair(key, target, version);
                                   });
                });
    return;
  }
  // Erasure coding: rebuild the fragment from k survivors, decode at
  // the target, then persist.
  const int k = config_.ec_data;
  std::vector<cluster::NodeId> sources = meta.replicas;
  const auto& topo = fabric_.topology();
  std::stable_sort(sources.begin(), sources.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     auto rank = [&](cluster::NodeId n) {
                       if (n == target) return 0;
                       return topo.same_rack(n, target) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });
  sources.resize(static_cast<std::size_t>(k));
  const auto decode_ns = static_cast<util::TimeNs>(std::ceil(
      static_cast<double>(meta.size) * config_.ec_ns_per_byte));
  auto remaining = std::make_shared<int>(k);
  for (cluster::NodeId source : sources) {
    io_.device(source, server_state(source).durable_device)
        .submit(IoKind::kRead, fragment,
                [this, key, source, target, fragment, version, remaining,
                 decode_ns, span] {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(
                      source, target, fragment,
                      [this, key, target, version, remaining, decode_ns,
                       span] {
                        if (--*remaining > 0) return;
                        sim_.after(decode_ns,
                                   [this, key, target, version, span] {
                                     trace::end_span(tracer_, span);
                                     finish_repair(key, target, version);
                                   });
                      });
                });
  }
}

void ObjectStore::finish_repair(const ObjectKey& key, cluster::NodeId target,
                                int version) {
  --repairs_in_flight_;
  auto it = objects_.find(key);
  const bool valid =
      it != objects_.end() && it->second.version == version &&
      dead_servers_.count(target) == 0 &&
      std::find(it->second.replicas.begin(), it->second.replicas.end(),
                target) == it->second.replicas.end();
  if (!valid) {
    // The replica set moved (another failure, overwrite, delete) or the
    // target died mid-repair; whoever moved it re-queued as needed.
    metrics_.count("repairs_abandoned");
    if (it != objects_.end() && health(it->second) == Health::kDegraded) {
      enqueue_repair(key);
    }
    pump_repairs();
    return;
  }
  ObjectMeta& meta = it->second;
  const Health before = health(meta);
  const int risk_before = at_risk_fragments(meta);
  meta.replicas.push_back(target);
  // The rebuilt copy takes the smallest fragment id the stripe is
  // missing (for EC that is the actual reconstructed fragment; for
  // replication it just relabels the copy).
  int rebuilt = 0;
  while (std::find(meta.fragments.begin(), meta.fragments.end(), rebuilt) !=
         meta.fragments.end()) {
    ++rebuilt;
  }
  meta.fragments.push_back(rebuilt);
  ++meta.version;
  write_durable(target, key, meta.per_server_bytes, [] {});
  metrics_.count("objects_repaired");
  if (repair_breaker_ != nullptr) repair_breaker_->record_success();
  note_health_change(key, meta, before, risk_before);
  pump_repairs();
}

void ObjectStore::fence_node(cluster::NodeId node, std::int64_t epoch) {
  std::int64_t& fence = fence_epoch_[node];
  if (epoch > fence) fence = epoch;
  metrics_.count("nodes_fenced");
}

std::int64_t ObjectStore::fence_epoch(cluster::NodeId node) const {
  const auto it = fence_epoch_.find(node);
  return it == fence_epoch_.end() ? 1 : it->second;
}

bool ObjectStore::put_fenced(cluster::NodeId client, std::int64_t epoch,
                             const ObjectKey& key, util::Bytes size,
                             PutCallback on_done) {
  const auto it = fence_epoch_.find(client);
  if (it != fence_epoch_.end() && epoch < it->second) {
    // Zombie write: the client's lease expired (and its epoch was
    // bumped) while it was on the far side of a partition. Reject
    // synchronously — no metadata change, no bytes moved, no callback.
    ++writes_fenced_;
    metrics_.count("writes_fenced");
    return false;
  }
  put(client, key, size, std::move(on_done));
  return true;
}

util::Bytes ObjectStore::durable_bytes(cluster::NodeId server) const {
  return server_state(server).durable_used;
}

const TieredCache& ObjectStore::cache(cluster::NodeId server) const {
  return *server_state(server).cache;
}

}  // namespace evolve::storage
