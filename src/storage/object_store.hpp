// H3-style distributed object store over the simulated cluster.
//
// Buckets hold named objects. Objects are placed on storage servers by
// rendezvous (HRW) hashing with R-way replication. Every server runs a
// tiered cache: the durable home of an object is the server's slowest
// device; faster devices act as read caches. GET prefers the replica
// closest to the client (same node, then same rack).
//
// All data movement goes through the shared network fabric and the
// per-device queues, so storage traffic contends with shuffle and
// collective traffic — the central "converged storage" property of EVOLVE.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/io_model.hpp"
#include "storage/tiered_cache.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::storage {

struct ObjectKey {
  std::string bucket;
  std::string name;

  std::string full() const { return bucket + "/" + name; }
  bool operator<(const ObjectKey& other) const {
    return full() < other.full();
  }
};

enum class Redundancy {
  kReplication,  // R full copies
  kErasure,      // k data + m parity fragments (Reed-Solomon-style)
};

struct ObjectStoreConfig {
  Redundancy redundancy = Redundancy::kReplication;
  int replicas = 2;        // replication factor (kReplication)
  int ec_data = 4;         // k (kErasure)
  int ec_parity = 2;       // m (kErasure)
  /// Encode/decode compute cost charged at the coordinating server.
  double ec_ns_per_byte = 0.3;
  util::TimeNs metadata_latency = util::micros(200);
  bool cache_on_put = true;   // write-through into the cache tiers
  bool cache_on_get = true;   // promote on read
  // Fraction of each cache device actually granted to the store
  // (the rest is left to co-located applications).
  double cache_capacity_fraction = 1.0;

  // -- Failure handling / background repair --------------------------
  /// Re-replicate degraded objects onto surviving servers after a crash.
  bool repair = true;
  /// Concurrent repair transfers.
  int repair_concurrency = 2;
  /// Grace delay between detecting a degraded object and repairing it
  /// (models failure-detection + repair-scheduling lag).
  util::TimeNs repair_delay = util::millis(500);

  // -- Gray-failure mitigation (replication GET path) ------------------
  /// Hedged reads: if the first replica read is still outstanding after
  /// a p-quantile-based delay, fire a second read at another replica;
  /// the first finisher wins and the loser is cancelled and accounted.
  bool hedged_reads = false;
  /// Hedge delay floor, also used until the GET latency histogram has
  /// `hedge_min_samples` observations to take the quantile from.
  util::TimeNs hedge_min_delay = util::millis(2);
  int hedge_min_samples = 20;
  double hedge_quantile = 95.0;  // percentile of own GET latency
  /// Verify payload checksums at read time: a corrupted replica is
  /// never surfaced — the read transparently fails over to a clean
  /// replica and the bad copy is dropped and queued for repair.
  bool checksum_reads = false;
  /// Background scrubber: periodically verifies stored replicas and
  /// routes corrupted ones into the repair path. Runs only while
  /// corruption exists, so the simulation still drains.
  bool scrub = false;
  util::TimeNs scrub_interval = util::millis(500);
  /// Replicas verified per scrub pass (bounds scrub I/O per interval).
  int scrub_replicas_per_pass = 64;

  /// Storage overhead factor: durable bytes per logical byte.
  double storage_overhead() const {
    return redundancy == Redundancy::kReplication
               ? static_cast<double>(replicas)
               : static_cast<double>(ec_data + ec_parity) / ec_data;
  }
};

struct GetResult {
  bool found = false;
  util::Bytes size = 0;
  cluster::NodeId served_by = cluster::kInvalidNode;
  /// Device tier name the read was served from ("dram", "nvme", "hdd").
  std::string tier;
  /// The payload failed its checksum. Only ever true with
  /// `checksum_reads` off — verified reads fail over to a clean replica
  /// (or report not-found) instead of surfacing corruption.
  bool corrupted = false;
  bool hedged = false;     // a hedge read was fired for this GET
  bool hedge_won = false;  // ... and the hedge replica delivered first
};

using PutCallback = std::function<void()>;
using GetCallback = std::function<void(const GetResult&)>;

class ObjectStore {
 public:
  /// `servers`: nodes that act as storage servers. Each must have at
  /// least one device; the slowest (last) device is the durable home.
  ObjectStore(sim::Simulation& sim, const cluster::Cluster& cluster,
              net::Fabric& fabric, IoSubsystem& io,
              std::vector<cluster::NodeId> servers,
              ObjectStoreConfig config = {});

  void create_bucket(const std::string& bucket);
  bool bucket_exists(const std::string& bucket) const;

  /// Writes an object of `size` bytes from `client`. Completes when all
  /// replicas are durable.
  void put(cluster::NodeId client, const ObjectKey& key, util::Bytes size,
           PutCallback on_done);

  /// Reads an object to `client`. Completes when the last byte arrives.
  void get(cluster::NodeId client, const ObjectKey& key, GetCallback on_done);

  /// Installs an object instantly (no simulated time): metadata, durable
  /// bytes on every replica, and optional cache admission. Benchmarks use
  /// this to stage input datasets without simulating the ingest.
  void preload(const ObjectKey& key, util::Bytes size, bool warm_cache = false);

  /// Deletes an object (metadata-latency cost).
  void remove(cluster::NodeId client, const ObjectKey& key,
              PutCallback on_done);

  bool exists(const ObjectKey& key) const;
  std::optional<util::Bytes> object_size(const ObjectKey& key) const;

  /// Attaches a span tracer: GET/PUT/repair become kStorage spans (with
  /// the serving tier as an attribute). Null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Names of objects in a bucket with the given prefix, sorted.
  std::vector<std::string> list(const std::string& bucket,
                                const std::string& prefix = "") const;

  // -- Multipart upload (large-object ingest path) --------------------
  /// Starts a multipart upload; returns an upload id.
  std::int64_t initiate_multipart(const ObjectKey& key);
  /// Uploads one part; parts may be uploaded concurrently.
  void upload_part(cluster::NodeId client, std::int64_t upload_id,
                   int part_number, util::Bytes size, PutCallback on_done);
  /// Completes the upload, making the assembled object visible.
  void complete_multipart(std::int64_t upload_id, PutCallback on_done);

  /// Replica servers for a key (primary first). Exposed so the dataflow
  /// engine can do locality-aware task placement.
  std::vector<cluster::NodeId> locate(const ObjectKey& key) const;

  const std::vector<cluster::NodeId>& servers() const { return servers_; }
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Total durable bytes on one server.
  util::Bytes durable_bytes(cluster::NodeId server) const;

  /// The cache of one server (tests/benchmarks inspect hit ratios).
  const TieredCache& cache(cluster::NodeId server) const;

  // -- Failure handling ------------------------------------------------
  /// Server crash with media loss: its replicas vanish, its cache is
  /// wiped, and every degraded-but-readable object is queued for
  /// background re-replication onto surviving servers. Objects whose
  /// last replica (or k-th fragment) died are permanently lost: GETs
  /// return not-found, but metadata stays so callers can observe it.
  /// No-op for nodes that are not storage servers.
  void handle_node_failure(cluster::NodeId node);
  /// Recovery: the server rejoins EMPTY (cold cache, no replicas) and
  /// becomes a repair target again; stalled repairs re-arm.
  void handle_node_recovery(cluster::NodeId node);
  bool server_alive(cluster::NodeId node) const {
    return dead_servers_.count(node) == 0;
  }

  // -- Gray failures: silent corruption -------------------------------
  /// Marks one stored replica as bit-rotten: its payload no longer
  /// matches its checksum. Returns false if `server` holds no replica
  /// of `key`. Replication-path objects only.
  bool corrupt_replica(const ObjectKey& key, cluster::NodeId server);
  /// Corrupts up to `count` randomly chosen stored replicas (seeded,
  /// deterministic). With `spare_last_clean` an object's last clean
  /// replica is never corrupted, so data stays recoverable. Returns how
  /// many replicas were actually corrupted.
  int corrupt_random_replicas(std::uint64_t seed, int count,
                              bool spare_last_clean = true);
  bool replica_corrupted(const ObjectKey& key, cluster::NodeId server) const {
    return corrupted_replicas_.count({key, server}) != 0;
  }
  int corrupted_replica_count() const {
    return static_cast<int>(corrupted_replicas_.size());
  }

  // Hedge / checksum / scrub statistics.
  std::int64_t hedges_launched() const { return hedges_launched_; }
  std::int64_t hedge_wins() const { return hedge_wins_; }
  std::int64_t hedges_cancelled() const { return hedges_cancelled_; }
  util::Bytes hedge_wasted_bytes() const { return hedge_wasted_bytes_; }
  std::int64_t checksum_failures() const { return checksum_failures_; }
  std::int64_t corrupted_reads_surfaced() const {
    return corrupted_reads_surfaced_;
  }
  std::int64_t replicas_scrubbed() const { return replicas_scrubbed_; }

  /// Objects currently holding fewer live replicas/fragments than
  /// placed, but still readable.
  int under_replicated_objects() const { return underrep_count_; }
  /// Objects that became permanently unreadable (cumulative).
  int lost_objects() const { return lost_objects_; }
  /// Time-weighted integral of under-replicated objects (object·s).
  double under_replicated_object_seconds() const;
  /// Durable bytes `server` should hold according to live metadata —
  /// conservation check for tests (valid once transfers have drained).
  util::Bytes expected_durable_bytes(cluster::NodeId server) const;

 private:
  struct ObjectMeta {
    util::Bytes size = 0;
    /// Durable bytes held per server (== size for replication, the
    /// fragment size for erasure coding).
    util::Bytes per_server_bytes = 0;
    std::vector<cluster::NodeId> replicas;  // live holders, primary first
    /// Bumped on every replica-set change; in-flight repairs abandon
    /// their result when the version moved under them.
    int version = 0;
  };

  enum class Health { kFull, kDegraded, kLost };

  /// Durable bytes one server holds for an object of `size`.
  util::Bytes per_server_bytes(util::Bytes size) const;
  struct ServerState {
    cluster::NodeId node = cluster::kInvalidNode;
    std::unique_ptr<TieredCache> cache;     // fast tiers only
    std::vector<std::string> cache_tiers;   // device name per cache tier
    std::string durable_device;
    util::Bytes durable_used = 0;
  };
  struct MultipartUpload {
    ObjectKey key;
    util::Bytes total = 0;
    std::map<int, util::Bytes> parts;
  };

  ServerState& server_state(cluster::NodeId node);
  const ServerState& server_state(cluster::NodeId node) const;

  /// Writes `size` bytes durably on `server`, then `on_done`.
  void write_durable(cluster::NodeId server, const ObjectKey& key,
                     util::Bytes size, std::function<void()> on_done);

  /// Picks the replica to serve a GET for `client`.
  cluster::NodeId choose_replica(const std::vector<cluster::NodeId>& replicas,
                                 cluster::NodeId client) const;

  /// Shared state for one replication GET: the primary read (branch 0)
  /// races an optional hedge read (branch 1); the first finished
  /// transfer decides and the loser's flow is cancelled.
  struct ReadRace {
    ObjectKey key;
    cluster::NodeId client = cluster::kInvalidNode;
    util::Bytes size = 0;
    util::TimeNs start = 0;
    trace::SpanId span = trace::kNoSpan;
    trace::SpanId hedge_span = trace::kNoSpan;
    GetCallback cb;
    bool decided = false;
    bool hedged = false;
    int inflight = 0;                  // branches still running
    std::set<cluster::NodeId> tried;   // replicas any branch touched
    net::FlowId flow[2] = {0, 0};
    bool flow_active[2] = {false, false};
    GetResult result[2];               // per-branch candidate result
  };

  /// Runs one branch of a GET race against `server`: tier selection,
  /// device read, checksum verification (with failover to a clean
  /// replica), then the fabric transfer to the client.
  void run_read_branch(const std::shared_ptr<ReadRace>& race, int branch,
                       cluster::NodeId server);
  /// A branch's transfer arrived: decide the race if still open.
  void finish_read_branch(const std::shared_ptr<ReadRace>& race, int branch);
  /// A branch died (no clean replica left): deliver not-found when it
  /// was the last one standing.
  void abandon_read_branch(const std::shared_ptr<ReadRace>& race);

  /// Drops a corrupted replica from its object's replica set and queues
  /// re-replication (the checksum-detected analogue of a media crash).
  void drop_corrupted_replica(const ObjectKey& key, cluster::NodeId server);
  void purge_corrupted(const ObjectKey& key);
  void arm_scrub();
  void scrub_pass();

  /// Erasure-coded GET: fetch k fragments from the nearest fragment
  /// holders in parallel, then decode at the client.
  void get_erasure(cluster::NodeId client, const ObjectKey& key,
                   const ObjectMeta& meta, util::TimeNs start,
                   trace::SpanId span, GetCallback on_done);

  /// Replicas/fragments the object should hold (capped by server count).
  int placed_copies() const;
  Health health(const ObjectMeta& meta) const;
  /// All live servers ranked by rendezvous hash for `key`.
  std::vector<cluster::NodeId> ranked_servers(const ObjectKey& key) const;
  /// Folds the running under-replication integral up to now, then
  /// applies `delta` to the current count.
  void shift_underrep(int delta);
  void enqueue_repair(const ObjectKey& key);
  void pump_repairs();
  void start_repair(const ObjectKey& key);
  void finish_repair(const ObjectKey& key, cluster::NodeId target,
                     int version);

  sim::Simulation& sim_;
  const cluster::Cluster& cluster_;
  net::Fabric& fabric_;
  IoSubsystem& io_;
  std::vector<cluster::NodeId> servers_;
  ObjectStoreConfig config_;
  std::map<std::string, bool> buckets_;
  std::map<ObjectKey, ObjectMeta> objects_;
  std::map<cluster::NodeId, ServerState> server_states_;
  std::map<std::int64_t, MultipartUpload> uploads_;
  std::int64_t next_upload_id_ = 1;
  // Failure/repair state.
  std::set<cluster::NodeId> dead_servers_;
  std::deque<ObjectKey> repair_queue_;
  std::set<ObjectKey> repair_queued_;   // dedupes queue membership
  std::set<ObjectKey> repair_stalled_;  // no live target; retry on recovery
  int repairs_in_flight_ = 0;
  // Gray-failure state: replicas whose stored payload is bit-rotten.
  std::set<std::pair<ObjectKey, cluster::NodeId>> corrupted_replicas_;
  /// Entries under scrub verification right now (subset of the above;
  /// they stay corrupted until the verification read completes).
  std::set<std::pair<ObjectKey, cluster::NodeId>> scrub_inflight_;
  bool scrub_armed_ = false;
  std::int64_t hedges_launched_ = 0;
  std::int64_t hedge_wins_ = 0;
  std::int64_t hedges_cancelled_ = 0;
  util::Bytes hedge_wasted_bytes_ = 0;
  std::int64_t checksum_failures_ = 0;
  std::int64_t corrupted_reads_surfaced_ = 0;
  std::int64_t replicas_scrubbed_ = 0;
  int lost_objects_ = 0;
  int underrep_count_ = 0;
  util::TimeNs underrep_last_ = 0;
  double underrep_ns_ = 0;  // object·ns integral up to underrep_last_
  metrics::Registry metrics_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace evolve::storage
