// H3-style distributed object store over the simulated cluster.
//
// Buckets hold named objects. Objects are placed on storage servers by
// rendezvous (HRW) hashing with R-way replication or k+m erasure
// coding; placement is failure-domain aware by default: the HRW order
// is filtered so no rack holds more than ceil(copies / live racks)
// copies/fragments of one object, which is what lets an EC stripe
// survive a whole-rack outage. Every server runs a tiered cache: the
// durable home of an object is the server's slowest device; faster
// devices act as read caches. GET prefers the replica closest to the
// client (same node, then same rack); an erasure-coded GET reads the k
// nearest surviving fragments and reconstructs through parity when data
// fragments are dead or fail their checksum.
//
// All data movement goes through the shared network fabric and the
// per-device queues, so storage traffic contends with shuffle and
// collective traffic — the central "converged storage" property of EVOLVE.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/io_model.hpp"
#include "storage/tiered_cache.hpp"
#include "trace/tracer.hpp"
#include "util/circuit_breaker.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::storage {

struct ObjectKey {
  std::string bucket;
  std::string name;

  std::string full() const { return bucket + "/" + name; }
  bool operator<(const ObjectKey& other) const {
    return full() < other.full();
  }
};

enum class Redundancy {
  kReplication,  // R full copies
  kErasure,      // k data + m parity fragments (Reed-Solomon-style)
};

struct ObjectStoreConfig {
  Redundancy redundancy = Redundancy::kReplication;
  int replicas = 2;        // replication factor (kReplication)
  /// k (kErasure): any k of the k+m fragments reconstruct the object.
  /// An object stays readable while at most m fragments are dead; it is
  /// permanently lost only when MORE than m fragments are gone.
  int ec_data = 4;
  /// m (kErasure): parity fragments, i.e. how many fragment deaths a
  /// stripe tolerates. m dead = still recoverable; m+1 dead = lost.
  int ec_parity = 2;
  /// Encode/decode compute cost charged at the coordinating server
  /// (PUT) or the reading client (GET stripe assembly).
  double ec_ns_per_byte = 0.3;
  /// Extra per-logical-byte decode cost when a GET has to reconstruct
  /// through parity (some fragment in the read set is not a data
  /// fragment) — the modeled Reed-Solomon recovery math.
  double ec_reconstruct_ns_per_byte = 0.5;
  /// Failure-domain-aware placement: walk the HRW ranking but skip
  /// servers whose rack already holds ceil(copies / live racks)
  /// copies/fragments of this object (relaxed only when infeasible).
  /// Applies to replication and erasure coding alike. Disable to get
  /// the rack-oblivious pure-HRW placement (for A/B durability runs).
  bool rack_aware_placement = true;
  util::TimeNs metadata_latency = util::micros(200);
  bool cache_on_put = true;   // write-through into the cache tiers
  bool cache_on_get = true;   // promote on read
  // Fraction of each cache device actually granted to the store
  // (the rest is left to co-located applications).
  double cache_capacity_fraction = 1.0;

  // -- Failure handling / background repair --------------------------
  /// Re-replicate degraded objects onto surviving servers after a crash.
  bool repair = true;
  /// Concurrent repair transfers.
  int repair_concurrency = 2;
  /// Grace delay between detecting a degraded object and repairing it
  /// (models failure-detection + repair-scheduling lag).
  util::TimeNs repair_delay = util::millis(500);
  /// Aggregate admission cap for background rebuild traffic in bytes/s
  /// (the fabric bytes a repair injects: one copy for replication, k
  /// fragments for an EC reconstruction). Repairs whose admission would
  /// exceed the cap wait in their concurrency slot, so a rebuild storm
  /// can be throttled below foreground GET/PUT traffic. 0 = unthrottled.
  double rebuild_bandwidth_bytes_per_s = 0;
  /// Seeded jitter fraction on repair scheduling delays (the detection
  /// grace and the post-recovery re-scan pumps): each delay stretches by
  /// uniform [0, repair_jitter)·delay, desynchronizing the repair wave
  /// that mass recovery or a partition heal would otherwise fire all at
  /// once. 0 (default) = no jitter, bit-identical to the old behavior.
  double repair_jitter = 0.0;
  /// Seed for the repair-jitter RNG.
  std::uint64_t repair_seed = 1;
  /// Delayed-repair hysteresis: the grace a *suspected* server gets
  /// before its loss is acted on. suspect_node() starts the clock; a
  /// node cleared (clear_suspect) within the window costs zero rebuild
  /// traffic, while one that stays silent escalates to
  /// handle_node_failure when the window expires. Fragments on a
  /// suspect server accrue at_risk_fragment_seconds for the whole wait
  /// — the risk is real even though no repair has been queued yet.
  /// 0 (default) = no hysteresis: suspect_node escalates immediately.
  util::TimeNs repair_hysteresis = 0;

  // -- Gray-failure mitigation (GET path) ------------------------------
  /// Hedged reads: if the first replica read is still outstanding after
  /// a p-quantile-based delay, fire a second read at another replica;
  /// the first finisher wins and the loser is cancelled and accounted.
  /// On erasure-coded GETs the hedge fires one extra fragment read at
  /// an unused surviving fragment, covering the straggler fragment.
  bool hedged_reads = false;
  /// Hedge delay floor, also used until the GET latency histogram has
  /// `hedge_min_samples` observations to take the quantile from.
  util::TimeNs hedge_min_delay = util::millis(2);
  int hedge_min_samples = 20;
  double hedge_quantile = 95.0;  // percentile of own GET latency
  /// Verify payload checksums at read time: a corrupted replica is
  /// never surfaced — the read transparently fails over to a clean
  /// replica and the bad copy is dropped and queued for repair.
  bool checksum_reads = false;
  /// Background scrubber: periodically verifies stored replicas and
  /// routes corrupted ones into the repair path. Runs only while
  /// corruption exists, so the simulation still drains.
  bool scrub = false;
  util::TimeNs scrub_interval = util::millis(500);
  /// Replicas verified per scrub pass (bounds scrub I/O per interval).
  int scrub_replicas_per_pass = 64;

  /// Storage overhead factor: durable bytes per logical byte.
  double storage_overhead() const {
    return redundancy == Redundancy::kReplication
               ? static_cast<double>(replicas)
               : static_cast<double>(ec_data + ec_parity) / ec_data;
  }
};

struct GetResult {
  bool found = false;
  util::Bytes size = 0;
  cluster::NodeId served_by = cluster::kInvalidNode;
  /// Device tier name the read was served from ("dram", "nvme", "hdd").
  std::string tier;
  /// The payload failed its checksum. Only ever true with
  /// `checksum_reads` off — verified reads fail over to a clean replica
  /// (or report not-found) instead of surfacing corruption.
  bool corrupted = false;
  bool hedged = false;     // a hedge read was fired for this GET
  bool hedge_won = false;  // ... and the hedge replica/fragment was used
  /// The read ran below full redundancy: a replication GET against an
  /// under-replicated object, or an EC GET that could not use the k
  /// data fragments and reconstructed through parity.
  bool degraded = false;
  /// EC only: parity fragments in the read set (0 on a clean read).
  int parity_fragments_used = 0;
};

/// Snapshot of redundancy health across all objects. Permanent loss is
/// defined per redundancy scheme: for replication an object is lost
/// when zero live replicas remain; for erasure coding it is lost only
/// when more than m fragments are dead (m dead = still recoverable by
/// any k of the survivors, m+1 dead = unrecoverable).
struct DurabilityStats {
  int objects_full = 0;      // at placed redundancy
  int objects_degraded = 0;  // readable, but fragments/replicas missing
  int objects_lost = 0;      // currently unreadable (> m fragments dead)
  /// Fragments/replicas missing from degraded (still-readable) objects;
  /// what the rebuild queue still owes.
  int missing_fragments = 0;
  /// Time integral of `missing_fragments` (fragment-seconds at risk) —
  /// the EC analogue of under-replicated object-seconds.
  double at_risk_fragment_seconds = 0;
  std::int64_t objects_lost_total = 0;  // cumulative loss transitions
};

using PutCallback = std::function<void()>;
using GetCallback = std::function<void(const GetResult&)>;

class ObjectStore {
 public:
  /// `servers`: nodes that act as storage servers. Each must have at
  /// least one device; the slowest (last) device is the durable home.
  ObjectStore(sim::Simulation& sim, const cluster::Cluster& cluster,
              net::Fabric& fabric, IoSubsystem& io,
              std::vector<cluster::NodeId> servers,
              ObjectStoreConfig config = {});

  void create_bucket(const std::string& bucket);
  bool bucket_exists(const std::string& bucket) const;

  /// Writes an object of `size` bytes from `client`. Completes when all
  /// replicas are durable.
  void put(cluster::NodeId client, const ObjectKey& key, util::Bytes size,
           PutCallback on_done);

  /// Reads an object to `client`. Completes when the last byte arrives.
  void get(cluster::NodeId client, const ObjectKey& key, GetCallback on_done);

  /// Reads `bytes` of `key`'s payload to `client` — the point-read path
  /// stateful layers use (tablet block/index reads against a flushed
  /// generation): one replica chosen by proximity, tier-aware device
  /// read, checksum failover, and a fabric transfer of only the block,
  /// never the whole object. No hedging; never admits into the cache.
  void read_block(cluster::NodeId client, const ObjectKey& key,
                  util::Bytes bytes, GetCallback on_done);

  /// Installs an object instantly (no simulated time): metadata, durable
  /// bytes on every replica, and optional cache admission. Benchmarks use
  /// this to stage input datasets without simulating the ingest.
  void preload(const ObjectKey& key, util::Bytes size, bool warm_cache = false);

  /// Deletes an object (metadata-latency cost).
  void remove(cluster::NodeId client, const ObjectKey& key,
              PutCallback on_done);

  bool exists(const ObjectKey& key) const;
  std::optional<util::Bytes> object_size(const ObjectKey& key) const;

  /// Attaches a span tracer: GET/PUT/repair become kStorage spans (with
  /// the serving tier as an attribute). Null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Names of objects in a bucket with the given prefix, sorted.
  std::vector<std::string> list(const std::string& bucket,
                                const std::string& prefix = "") const;

  // -- Multipart upload (large-object ingest path) --------------------
  /// Starts a multipart upload; returns an upload id.
  std::int64_t initiate_multipart(const ObjectKey& key);
  /// Uploads one part; parts may be uploaded concurrently.
  void upload_part(cluster::NodeId client, std::int64_t upload_id,
                   int part_number, util::Bytes size, PutCallback on_done);
  /// Completes the upload, making the assembled object visible.
  void complete_multipart(std::int64_t upload_id, PutCallback on_done);

  /// Replica servers for a key (primary first). Exposed so the dataflow
  /// engine can do locality-aware task placement.
  std::vector<cluster::NodeId> locate(const ObjectKey& key) const;

  const std::vector<cluster::NodeId>& servers() const { return servers_; }
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Total durable bytes on one server.
  util::Bytes durable_bytes(cluster::NodeId server) const;

  /// The cache of one server (tests/benchmarks inspect hit ratios).
  const TieredCache& cache(cluster::NodeId server) const;

  // -- Failure handling ------------------------------------------------
  /// Server crash with media loss: its replicas vanish, its cache is
  /// wiped, and every degraded-but-readable object is queued for
  /// background re-replication onto surviving servers. An object is
  /// permanently lost only when its last replica died (replication) or
  /// more than m of its fragments are dead (erasure coding; losing
  /// exactly m still reconstructs): GETs then return not-found, but
  /// metadata stays so callers can observe it.
  /// No-op for nodes that are not storage servers.
  void handle_node_failure(cluster::NodeId node);
  /// Recovery: the server rejoins EMPTY (cold cache, no replicas) and
  /// becomes a repair target again; stalled repairs re-arm.
  void handle_node_recovery(cluster::NodeId node);
  bool server_alive(cluster::NodeId node) const {
    return dead_servers_.count(node) == 0;
  }

  // -- Delayed-repair hysteresis (suspected servers) -------------------
  /// Reports `node` as possibly failed (unreachable / quarantined — not
  /// confirmed media loss). With repair_hysteresis > 0 the store waits
  /// before rebuilding: the node's replicas stay in metadata while
  /// accruing at-risk seconds, and only if the window expires without
  /// clear_suspect does the node escalate to handle_node_failure. With
  /// hysteresis 0 this IS handle_node_failure. No-op for dead or
  /// non-server nodes.
  void suspect_node(cluster::NodeId node);
  /// The node proved alive within the window: the pending escalation is
  /// cancelled and no rebuild was ever queued. No-op when not suspect.
  void clear_suspect(cluster::NodeId node);
  bool node_suspect(cluster::NodeId node) const {
    return suspects_.count(node) != 0;
  }
  /// Suspects cleared within their window (rebuild storms avoided).
  std::int64_t suspects_cleared() const { return suspects_cleared_; }

  const ObjectStoreConfig& config() const { return config_; }

  // -- Fencing (zombie-write rejection) --------------------------------
  /// Raises the minimum acceptable write epoch for `node` (wired from
  /// LeaseManager::on_expire). A node on the far side of a partition
  /// keeps running with its old epoch; once fenced, its writes are
  /// zombie writes and put_fenced rejects them.
  void fence_node(cluster::NodeId node, std::int64_t epoch);
  /// Epoch-stamped PUT. Returns false — synchronously, without invoking
  /// `on_done` or moving any bytes — when `epoch` is below the client's
  /// fence epoch; otherwise behaves exactly like put() and returns true.
  bool put_fenced(cluster::NodeId client, std::int64_t epoch,
                  const ObjectKey& key, util::Bytes size, PutCallback on_done);
  /// Minimum epoch `node` must present (1 = never fenced).
  std::int64_t fence_epoch(cluster::NodeId node) const;
  std::int64_t writes_fenced() const { return writes_fenced_; }

  /// Optional circuit breaker guarding the background repair scan: when
  /// open, pump_repairs defers instead of launching rebuild traffic into
  /// a fabric that keeps failing it. Null (default) disables.
  void set_repair_breaker(util::CircuitBreaker* breaker) {
    repair_breaker_ = breaker;
  }

  // -- Gray failures: silent corruption -------------------------------
  /// Marks one stored replica as bit-rotten: its payload no longer
  /// matches its checksum. Returns false if `server` holds no replica
  /// of `key`. Replication-path objects only.
  bool corrupt_replica(const ObjectKey& key, cluster::NodeId server);
  /// Corrupts up to `count` randomly chosen stored replicas (seeded,
  /// deterministic). With `spare_last_clean` an object's last clean
  /// replica is never corrupted, so data stays recoverable. Returns how
  /// many replicas were actually corrupted.
  int corrupt_random_replicas(std::uint64_t seed, int count,
                              bool spare_last_clean = true);
  bool replica_corrupted(const ObjectKey& key, cluster::NodeId server) const {
    return corrupted_replicas_.count({key, server}) != 0;
  }
  int corrupted_replica_count() const {
    return static_cast<int>(corrupted_replicas_.size());
  }

  // Hedge / checksum / scrub statistics.
  std::int64_t hedges_launched() const { return hedges_launched_; }
  std::int64_t hedge_wins() const { return hedge_wins_; }
  std::int64_t hedges_cancelled() const { return hedges_cancelled_; }
  util::Bytes hedge_wasted_bytes() const { return hedge_wasted_bytes_; }
  std::int64_t checksum_failures() const { return checksum_failures_; }
  std::int64_t corrupted_reads_surfaced() const {
    return corrupted_reads_surfaced_;
  }
  std::int64_t replicas_scrubbed() const { return replicas_scrubbed_; }

  /// Objects currently holding fewer live replicas/fragments than
  /// placed, but still readable.
  int under_replicated_objects() const { return underrep_count_; }
  /// Objects that became permanently unreadable (cumulative).
  int lost_objects() const { return lost_objects_; }
  /// Time-weighted integral of under-replicated objects (object·s).
  double under_replicated_object_seconds() const;
  /// Time-weighted integral of missing fragments/replicas on degraded
  /// objects (fragment·s) — how long data sat one step closer to loss.
  double at_risk_fragment_seconds() const;
  /// Current + cumulative durability snapshot (see DurabilityStats).
  DurabilityStats durability_stats() const;
  /// Total time repairs spent waiting on the rebuild bandwidth cap.
  double rebuild_throttle_wait_seconds() const {
    return static_cast<double>(rebuild_throttle_wait_ns_) / 1e9;
  }
  /// Durable bytes `server` should hold according to live metadata —
  /// conservation check for tests (valid once transfers have drained).
  util::Bytes expected_durable_bytes(cluster::NodeId server) const;

 private:
  struct ObjectMeta {
    util::Bytes size = 0;
    /// Durable bytes held per server (== size for replication, the
    /// fragment size for erasure coding).
    util::Bytes per_server_bytes = 0;
    std::vector<cluster::NodeId> replicas;  // live holders, primary first
    /// Fragment id held by replicas[i] (parallel to `replicas`). For
    /// erasure coding ids 0..k-1 are data fragments and k..k+m-1 are
    /// parity; a read set that is not exactly {0..k-1} reconstructs.
    /// For replication the ids merely label copies.
    std::vector<int> fragments;
    /// Bumped on every replica-set change; in-flight repairs abandon
    /// their result when the version moved under them.
    int version = 0;
  };

  enum class Health { kFull, kDegraded, kLost };

  /// Durable bytes one server holds for an object of `size`.
  util::Bytes per_server_bytes(util::Bytes size) const;
  struct ServerState {
    cluster::NodeId node = cluster::kInvalidNode;
    std::unique_ptr<TieredCache> cache;     // fast tiers only
    std::vector<std::string> cache_tiers;   // device name per cache tier
    std::string durable_device;
    util::Bytes durable_used = 0;
  };
  struct MultipartUpload {
    ObjectKey key;
    util::Bytes total = 0;
    std::map<int, util::Bytes> parts;
  };

  ServerState& server_state(cluster::NodeId node);
  const ServerState& server_state(cluster::NodeId node) const;

  /// Writes `size` bytes durably on `server`, then `on_done`.
  void write_durable(cluster::NodeId server, const ObjectKey& key,
                     util::Bytes size, std::function<void()> on_done);

  /// Picks the replica to serve a GET for `client`.
  cluster::NodeId choose_replica(const std::vector<cluster::NodeId>& replicas,
                                 cluster::NodeId client) const;

  /// Shared state for one replication GET: the primary read (branch 0)
  /// races an optional hedge read (branch 1); the first finished
  /// transfer decides and the loser's flow is cancelled.
  struct ReadRace {
    ObjectKey key;
    cluster::NodeId client = cluster::kInvalidNode;
    util::Bytes size = 0;
    util::TimeNs start = 0;
    trace::SpanId span = trace::kNoSpan;
    trace::SpanId hedge_span = trace::kNoSpan;
    GetCallback cb;
    bool decided = false;
    bool hedged = false;
    bool degraded = false;  // object below placement at GET time
    int inflight = 0;                  // branches still running
    std::set<cluster::NodeId> tried;   // replicas any branch touched
    net::FlowId flow[2] = {0, 0};
    bool flow_active[2] = {false, false};
    GetResult result[2];               // per-branch candidate result
  };

  /// Runs one branch of a GET race against `server`: tier selection,
  /// device read, checksum verification (with failover to a clean
  /// replica), then the fabric transfer to the client.
  void run_read_branch(const std::shared_ptr<ReadRace>& race, int branch,
                       cluster::NodeId server);
  /// A branch's transfer arrived: decide the race if still open.
  void finish_read_branch(const std::shared_ptr<ReadRace>& race, int branch);
  /// A branch died (no clean replica left): deliver not-found when it
  /// was the last one standing.
  void abandon_read_branch(const std::shared_ptr<ReadRace>& race);

  /// Shared state for one block (point) read.
  struct BlockRead {
    ObjectKey key;
    cluster::NodeId client = cluster::kInvalidNode;
    util::Bytes block = 0;
    util::TimeNs start = 0;
    trace::SpanId span = trace::kNoSpan;
    GetCallback cb;
    bool degraded = false;
    bool corrupted = false;
    std::set<cluster::NodeId> tried;
  };
  /// One attempt of a block read against `server`; fails over to an
  /// untried clean replica on checksum failure.
  void run_block_read(const std::shared_ptr<BlockRead>& read,
                      cluster::NodeId server);

  /// Drops a corrupted replica from its object's replica set and queues
  /// re-replication (the checksum-detected analogue of a media crash).
  void drop_corrupted_replica(const ObjectKey& key, cluster::NodeId server);
  void purge_corrupted(const ObjectKey& key);
  void arm_scrub();
  void scrub_pass();

  /// Shared state for one erasure-coded GET: k fragment fetches run in
  /// parallel (plus at most one hedge fragment); the read completes when
  /// any k fragments have landed, then pays the decode/reconstruction
  /// cost at the client.
  struct EcBranch {
    cluster::NodeId server = cluster::kInvalidNode;
    int fragment = -1;
    net::FlowId flow = 0;
    bool flow_active = false;
    bool landed = false;
    bool hedge = false;
  };
  struct EcRead {
    ObjectKey key;
    cluster::NodeId client = cluster::kInvalidNode;
    util::Bytes size = 0;
    util::Bytes fragment_bytes = 0;
    util::TimeNs start = 0;
    trace::SpanId span = trace::kNoSpan;
    trace::SpanId hedge_span = trace::kNoSpan;
    GetCallback cb;
    bool done = false;
    bool meta_degraded = false;  // object below placement at GET time
    bool corrupted = false;      // rotten fragment served (checksums off)
    bool hedged = false;
    int waiting = 0;   // fragment landings still required (k - landed)
    int inflight = 0;  // launched branches not yet landed or abandoned
    std::set<cluster::NodeId> tried;
    std::vector<EcBranch> branches;
    std::string tier;  // tier of the nearest fragment (reporting)
    cluster::NodeId served_by = cluster::kInvalidNode;
  };

  /// Erasure-coded GET: fetch the k nearest surviving fragments in
  /// parallel (reconstructing through parity when data fragments are
  /// dead or rotten), then decode at the client. Checksummed fragment
  /// reads fail over to unused survivors; with hedging on, one extra
  /// fragment read covers the straggler.
  void get_erasure(cluster::NodeId client, const ObjectKey& key,
                   const ObjectMeta& meta, util::TimeNs start,
                   trace::SpanId span, GetCallback on_done);
  /// Launches one fragment fetch; `hedge` marks the extra hedge branch.
  void launch_ec_branch(const std::shared_ptr<EcRead>& read,
                        cluster::NodeId server, int fragment, bool hedge);
  void finish_ec_branch(const std::shared_ptr<EcRead>& read, int branch);
  /// A fragment branch died (no clean survivor to fail over to).
  void abandon_ec_branch(const std::shared_ptr<EcRead>& read);
  /// All k fragments landed: cancel stragglers, decode, deliver.
  void complete_ec_read(const std::shared_ptr<EcRead>& read);
  /// Hedge-fire delay from the GET latency quantile (floor until warm).
  util::TimeNs hedge_delay() const;

  /// Replicas/fragments the object should hold (capped by server count).
  int placed_copies() const;
  /// Live copies below which the object is unreadable (1 or k).
  int min_live_copies() const;
  Health health(const ObjectMeta& meta) const;
  /// Missing fragments/replicas a degraded object owes the rebuild
  /// queue (0 when full or lost).
  int at_risk_fragments(const ObjectMeta& meta) const;
  /// All live servers ranked by rendezvous hash for `key`.
  std::vector<cluster::NodeId> ranked_servers(const ObjectKey& key) const;
  /// HRW ranking filtered by the per-rack placement cap (when enabled):
  /// the first placed_copies() entries are where the object goes.
  std::vector<cluster::NodeId> place_copies(const ObjectKey& key) const;
  /// Folds the running under-replication integral up to now, then
  /// applies `delta` to the current count.
  void shift_underrep(int delta);
  /// Same for the missing-fragment (at-risk) integral.
  void shift_at_risk(int delta);
  /// Applies a replica-set health transition: under-replication and
  /// at-risk accounting, loss counting, and repair queueing.
  void note_health_change(const ObjectKey& key, const ObjectMeta& meta,
                          Health before, int risk_before);
  /// A replica left `node` outside the failure path (delete, overwrite,
  /// corruption drop): keeps the suspect at-risk count in sync.
  void note_replica_removed(cluster::NodeId node);
  void enqueue_repair(const ObjectKey& key);
  void pump_repairs();
  /// Claims a concurrency slot and (if capped) waits out the rebuild
  /// bandwidth admission before starting the transfers.
  void start_repair(const ObjectKey& key);
  void begin_repair_transfers(const ObjectKey& key, int version);
  void finish_repair(const ObjectKey& key, cluster::NodeId target,
                     int version);

  sim::Simulation& sim_;
  const cluster::Cluster& cluster_;
  net::Fabric& fabric_;
  IoSubsystem& io_;
  std::vector<cluster::NodeId> servers_;
  ObjectStoreConfig config_;
  std::map<std::string, bool> buckets_;
  std::map<ObjectKey, ObjectMeta> objects_;
  std::map<cluster::NodeId, ServerState> server_states_;
  std::map<std::int64_t, MultipartUpload> uploads_;
  std::int64_t next_upload_id_ = 1;
  // Failure/repair state.
  std::set<cluster::NodeId> dead_servers_;
  /// Suspected (possibly failed) servers awaiting the hysteresis window.
  struct SuspectState {
    int at_risk = 0;  // replicas counted into the at-risk integral
    sim::EventId escalate = 0;
  };
  std::map<cluster::NodeId, SuspectState> suspects_;
  std::int64_t suspects_cleared_ = 0;
  /// Pending repairs. Drained risk-first: the object with the fewest
  /// surviving spare copies (an EC stripe one fragment from loss) is
  /// repaired before a freshly degraded one, ties in key order.
  std::set<ObjectKey> repair_queued_;
  std::set<ObjectKey> repair_stalled_;  // no live target; retry on recovery
  int repairs_in_flight_ = 0;
  /// Token-bucket edge for the rebuild bandwidth cap: the sim time at
  /// which the next repair's fabric bytes may be admitted.
  util::TimeNs rebuild_admit_at_ = 0;
  util::TimeNs rebuild_throttle_wait_ns_ = 0;
  util::Rng repair_rng_;  // repair-delay jitter (config.repair_seed)
  util::CircuitBreaker* repair_breaker_ = nullptr;  // non-owned, optional
  bool repair_pump_armed_ = false;  // breaker-deferred pump pending
  // Fencing state: minimum write epoch per node (absent = 1).
  std::map<cluster::NodeId, std::int64_t> fence_epoch_;
  std::int64_t writes_fenced_ = 0;
  // Gray-failure state: replicas whose stored payload is bit-rotten.
  std::set<std::pair<ObjectKey, cluster::NodeId>> corrupted_replicas_;
  /// Entries under scrub verification right now (subset of the above;
  /// they stay corrupted until the verification read completes).
  std::set<std::pair<ObjectKey, cluster::NodeId>> scrub_inflight_;
  bool scrub_armed_ = false;
  std::int64_t hedges_launched_ = 0;
  std::int64_t hedge_wins_ = 0;
  std::int64_t hedges_cancelled_ = 0;
  util::Bytes hedge_wasted_bytes_ = 0;
  std::int64_t checksum_failures_ = 0;
  std::int64_t corrupted_reads_surfaced_ = 0;
  std::int64_t replicas_scrubbed_ = 0;
  int lost_objects_ = 0;
  int underrep_count_ = 0;
  util::TimeNs underrep_last_ = 0;
  double underrep_ns_ = 0;  // object·ns integral up to underrep_last_
  int at_risk_count_ = 0;   // missing fragments on degraded objects
  util::TimeNs at_risk_last_ = 0;
  double at_risk_ns_ = 0;   // fragment·ns integral up to at_risk_last_
  metrics::Registry metrics_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace evolve::storage
