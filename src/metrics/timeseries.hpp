// Time-series of (time, value) samples plus utilization accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace evolve::metrics {

/// Append-only series of timestamped samples (monitoring-style).
class TimeSeries {
 public:
  struct Sample {
    util::TimeNs time;
    double value;
  };

  /// Appends a sample; `time` must be non-decreasing.
  void record(util::TimeNs time, double value);

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  double last() const;
  double min() const;
  double max() const;

  /// Time-weighted average over [first sample, `end`] treating the series
  /// as a step function. Returns 0 on an empty series.
  double time_weighted_mean(util::TimeNs end) const;

  /// Integral of the step function over [first sample, `end`]
  /// (value * seconds).
  double integral(util::TimeNs end) const;

 private:
  std::vector<Sample> samples_;
};

/// Tracks a level that goes up and down (e.g. cores in use) and computes
/// time-weighted utilization against a capacity.
class UsageTracker {
 public:
  explicit UsageTracker(double capacity = 0) : capacity_(capacity) {}

  void set_capacity(double capacity) { capacity_ = capacity; }
  double capacity() const { return capacity_; }

  /// Adjusts the in-use level at `time` by `delta`.
  void add(util::TimeNs time, double delta);

  double current() const { return level_; }
  double peak() const { return peak_; }

  /// Average in-use level over [0, end].
  double mean_usage(util::TimeNs end) const;

  /// mean_usage / capacity in [0, 1]; 0 if capacity is 0.
  double utilization(util::TimeNs end) const;

 private:
  double capacity_;
  double level_ = 0;
  double peak_ = 0;
  double weighted_sum_ = 0;  // integral of level over time (value * ns)
  util::TimeNs last_time_ = 0;
};

}  // namespace evolve::metrics
