#include "metrics/registry.hpp"

#include <sstream>

namespace evolve::metrics {

const Histogram Registry::kEmptyHistogram{};
const TimeSeries Registry::kEmptySeries{};

void Registry::count(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

std::int64_t Registry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double Registry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::observe(const std::string& name, std::int64_t value) {
  histograms_[name].record(value);
}

const Histogram& Registry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? kEmptyHistogram : it->second;
}

bool Registry::has_histogram(const std::string& name) const {
  return histograms_.count(name) != 0;
}

void Registry::sample(const std::string& name, util::TimeNs time,
                      double value) {
  series_[name].record(time, value);
}

const TimeSeries& Registry::series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? kEmptySeries : it->second;
}

bool Registry::has_series(const std::string& name) const {
  return series_.count(name) != 0;
}

std::string Registry::render() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << "counter " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out << "gauge " << name << " = " << value << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << "histogram " << name << " " << hist.summary() << "\n";
  }
  for (const auto& [name, ts] : series_) {
    out << "series " << name << " n=" << ts.size() << " last=" << ts.last()
        << "\n";
  }
  return out.str();
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

}  // namespace evolve::metrics
