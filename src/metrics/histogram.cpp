#include "metrics/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace evolve::metrics {

namespace {
constexpr int kSubBucketBits = 6;
constexpr std::int64_t kSubBuckets = 1 << kSubBucketBits;  // 64
}  // namespace

Histogram::Histogram() = default;

std::size_t Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Normalize to a mantissa in [64, 128): value = (64 + sub) << octave,
  // so each octave splits into 64 sub-buckets of width 2^octave
  // (bounded relative error ~1/64; octave 0 is exact).
  const auto v = static_cast<std::uint64_t>(value);
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits;  // >= 0
  const std::int64_t sub = (value >> octave) - kSubBuckets;
  return static_cast<std::size_t>(kSubBuckets + octave * kSubBuckets + sub);
}

std::int64_t Histogram::bucket_midpoint(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t rest = index - kSubBuckets;
  const int octave = static_cast<int>(rest / kSubBuckets);
  const std::int64_t sub = static_cast<std::int64_t>(rest % kSubBuckets);
  const std::int64_t lo = (kSubBuckets + sub) << octave;
  const std::int64_t width = std::int64_t{1} << octave;
  return lo + width / 2;
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::int64_t count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  const std::size_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[index] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  // Chan's batch update: `count` identical samples form a block with
  // mean `value` and zero internal variance.
  const double prior = static_cast<double>(count_);
  const double block = static_cast<double>(count);
  const double total = prior + block;
  const double delta = static_cast<double>(value) - welford_mean_;
  welford_mean_ += delta * block / total;
  m2_ += delta * delta * prior * block / total;
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }
std::int64_t Histogram::max() const { return count_ == 0 ? 0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ == 0) return 0.0;
  const double var = m2_ / static_cast<double>(count_);
  return var <= 0 ? 0.0 : std::sqrt(var);
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Chan's parallel combination of the two (mean, M2) pairs.
  const double prior = static_cast<double>(count_);
  const double block = static_cast<double>(other.count_);
  const double total = prior + block;
  const double delta = other.welford_mean_ - welford_mean_;
  welford_mean_ += delta * block / total;
  m2_ += other.m2_ + delta * delta * prior * block / total;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  buckets_.clear();
  count_ = 0;
  min_ = max_ = 0;
  sum_ = welford_mean_ = m2_ = 0;
}

std::string Histogram::summary() const {
  std::ostringstream out;
  out << "n=" << count_ << " mean=" << mean() << " p50=" << p50()
      << " p95=" << p95() << " p99=" << p99() << " max=" << max();
  return out.str();
}

}  // namespace evolve::metrics
