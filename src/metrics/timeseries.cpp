#include "metrics/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::metrics {

void TimeSeries::record(util::TimeNs time, double value) {
  if (!samples_.empty() && time < samples_.back().time) {
    throw std::invalid_argument("TimeSeries::record: time went backwards");
  }
  samples_.push_back(Sample{time, value});
}

double TimeSeries::last() const {
  return samples_.empty() ? 0.0 : samples_.back().value;
}

double TimeSeries::min() const {
  double best = samples_.empty() ? 0.0 : samples_.front().value;
  for (const auto& s : samples_) best = std::min(best, s.value);
  return best;
}

double TimeSeries::max() const {
  double best = samples_.empty() ? 0.0 : samples_.front().value;
  for (const auto& s : samples_) best = std::max(best, s.value);
  return best;
}

double TimeSeries::integral(util::TimeNs end) const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const util::TimeNs next =
        (i + 1 < samples_.size()) ? samples_[i + 1].time : end;
    if (next <= samples_[i].time) continue;
    total += samples_[i].value * util::to_seconds(next - samples_[i].time);
  }
  return total;
}

double TimeSeries::time_weighted_mean(util::TimeNs end) const {
  if (samples_.empty()) return 0.0;
  const util::TimeNs span = end - samples_.front().time;
  if (span <= 0) return samples_.front().value;
  return integral(end) / util::to_seconds(span);
}

void UsageTracker::add(util::TimeNs time, double delta) {
  if (time < last_time_) {
    throw std::invalid_argument("UsageTracker::add: time went backwards");
  }
  weighted_sum_ += level_ * static_cast<double>(time - last_time_);
  last_time_ = time;
  level_ += delta;
  peak_ = std::max(peak_, level_);
}

double UsageTracker::mean_usage(util::TimeNs end) const {
  if (end <= 0) return 0.0;
  double sum = weighted_sum_;
  if (end > last_time_) sum += level_ * static_cast<double>(end - last_time_);
  return sum / static_cast<double>(end);
}

double UsageTracker::utilization(util::TimeNs end) const {
  if (capacity_ <= 0) return 0.0;
  return mean_usage(end) / capacity_;
}

}  // namespace evolve::metrics
