// Named metric registry: counters, gauges, histograms, series.
// Mirrors the Prometheus-style monitoring plane of the EVOLVE testbed.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metrics/histogram.hpp"
#include "metrics/timeseries.hpp"

namespace evolve::metrics {

class Registry {
 public:
  /// Monotonic counter (creates on first use).
  void count(const std::string& name, std::int64_t delta = 1);
  std::int64_t counter(const std::string& name) const;

  /// Last-value gauge.
  void set_gauge(const std::string& name, double value);
  double gauge(const std::string& name) const;

  /// Histogram sample.
  void observe(const std::string& name, std::int64_t value);
  const Histogram& histogram(const std::string& name) const;
  bool has_histogram(const std::string& name) const;

  /// Time series sample.
  void sample(const std::string& name, util::TimeNs time, double value);
  const TimeSeries& series(const std::string& name) const;
  bool has_series(const std::string& name) const;

  /// Plain-text dump of all metrics, sorted by name.
  std::string render() const;

  void reset();

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
  static const Histogram kEmptyHistogram;
  static const TimeSeries kEmptySeries;
};

}  // namespace evolve::metrics
