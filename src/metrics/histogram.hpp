// Log-bucketed histogram (HDR-style) for latency/size distributions.
//
// Values are bucketed with bounded relative error (~= 1/64 per octave),
// which is plenty for percentile reporting in benchmark tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace evolve::metrics {

class Histogram {
 public:
  Histogram();

  /// Records a non-negative sample (negative samples clamp to zero).
  void record(std::int64_t value);

  /// Records `count` occurrences of `value`.
  void record_n(std::int64_t value, std::int64_t count);

  std::int64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  double stddev() const;

  /// Percentile in [0, 100]. Returns 0 on an empty histogram.
  std::int64_t percentile(double p) const;

  std::int64_t p50() const { return percentile(50); }
  std::int64_t p95() const { return percentile(95); }
  std::int64_t p99() const { return percentile(99); }
  std::int64_t p999() const { return percentile(99.9); }

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  void reset();

  /// One-line summary, e.g. "n=100 mean=5.2 p50=5 p95=9 p99=10 max=10".
  std::string summary() const;

 private:
  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_midpoint(std::size_t index);

  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave

  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0;
  // Welford/Chan accumulators for the variance: mean and the centred
  // sum of squares M2 = sum((x - mean)^2). The naive E[x^2] - E[x]^2
  // form cancels catastrophically for large offsets (ns timestamps).
  double welford_mean_ = 0;
  double m2_ = 0;
};

}  // namespace evolve::metrics
