// Physical plans: logical operator trees split into pipelined stages at
// shuffle boundaries (wide operators), like Spark's DAGScheduler.
#pragma once

#include <string>
#include <vector>

#include "dataflow/plan.hpp"

namespace evolve::dataflow {

struct StageDef {
  int id = -1;
  std::vector<int> operators;   // pipelined chain, execution order
  std::vector<int> parents;     // stage ids feeding this stage via shuffle
  std::string source_dataset;   // set when the stage scans a dataset
  std::string sink_dataset;     // set when the stage writes the result
  int requested_partitions = 0;  // from the wide head op (0 = default)
  double cpu_ns_per_byte = 0;   // aggregate compute per input byte
  double output_ratio = 1.0;    // output bytes per input byte

  bool reads_source() const { return !source_dataset.empty(); }
  bool writes_sink() const { return !sink_dataset.empty(); }
};

class PhysicalPlan {
 public:
  /// Compiles a validated logical plan. Stages come out in a topological
  /// order (parents before children); the last stage holds the sink.
  static PhysicalPlan compile(const LogicalPlan& plan);

  const std::vector<StageDef>& stages() const { return stages_; }
  const StageDef& stage(int id) const;
  int size() const { return static_cast<int>(stages_.size()); }
  int final_stage() const { return size() - 1; }

  /// Children of each stage (inverse of parents).
  std::vector<std::vector<int>> children() const;

 private:
  std::vector<StageDef> stages_;
};

}  // namespace evolve::dataflow
