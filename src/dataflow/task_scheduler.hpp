// Executor slot management with delay scheduling (locality waits).
//
// Tasks queue FIFO with an optional preferred-node set. The scheduler
// assigns a task to a preferred executor immediately; a task with
// preferences only falls back to a non-preferred executor after waiting
// `locality_wait` (0 disables delay scheduling: immediate fallback).
//
// Hot-path layout: executors with free slots are indexed per node and
// globally (ordered by executor index, preserving the deterministic
// lowest-index-wins tie break), and waiting tasks are indexed by preferred
// node, so assign() never rescans the whole queue after a release() — it
// walks only nodes that have both a free executor and a waiter.
//
// Precondition: `now` passed to enqueue()/assign() is non-decreasing (it
// is simulation time), so tasks expire their locality wait in FIFO order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/types.hpp"

namespace evolve::dataflow {

using TaskId = std::int64_t;

struct Assignment {
  TaskId task;
  int executor;
  bool local;  // assigned to a preferred node
};

class TaskScheduler {
 public:
  explicit TaskScheduler(util::TimeNs locality_wait)
      : locality_wait_(locality_wait) {}

  /// Registers an executor with `slots` concurrent task slots.
  /// Returns the executor index.
  int add_executor(cluster::NodeId node, int slots);

  cluster::NodeId executor_node(int executor) const;
  int executor_count() const { return static_cast<int>(executors_.size()); }
  int free_slots() const { return free_total_; }

  /// Queues a task; `preferred` may be empty (no locality preference).
  void enqueue(TaskId task, std::vector<cluster::NodeId> preferred,
               util::TimeNs now);

  /// Frees one slot on `executor` (its task finished).
  void release(int executor);

  /// Marks every executor on `node` dead (alive = false): they receive
  /// no assignments and their slots leave the free pool. Marking a node
  /// alive again returns its free slots to the pool. Idempotent.
  void set_node_alive(cluster::NodeId node, bool alive);
  bool node_alive(cluster::NodeId node) const {
    return dead_nodes_.count(node) == 0;
  }

  /// Health quarantine: the node's executors stop receiving assignments
  /// and drain (running tasks finish; their slots stay out of the pool
  /// until the quarantine lifts). Orthogonal to dead — a node can be
  /// both; slots return only when it is neither. Idempotent.
  void set_node_quarantined(cluster::NodeId node, bool quarantined);
  bool node_quarantined(cluster::NodeId node) const {
    return quarantined_nodes_.count(node) != 0;
  }

  /// Assigns as many queued tasks as possible at time `now`, in FIFO
  /// order among the currently assignable tasks.
  std::vector<Assignment> assign(util::TimeNs now);

  /// Earliest time a waiting preferred task becomes eligible for remote
  /// fallback; -1 when no such task exists.
  util::TimeNs next_expiry() const;

  int pending() const { return static_cast<int>(queue_.size()); }
  std::int64_t local_assignments() const { return local_; }
  std::int64_t total_assignments() const { return total_; }

 private:
  struct Executor {
    cluster::NodeId node;
    int free;
  };
  struct Pending {
    TaskId task;
    std::vector<cluster::NodeId> preferred;
    util::TimeNs enqueued;
  };

  /// Lowest free executor index on any of the given nodes; -1 if none.
  int find_free_preferred(const std::vector<cluster::NodeId>& preferred) const;
  void take_slot(int executor);
  void remove_task(std::int64_t seq, const Pending& task);

  /// A node's executors are assignable only when it is neither dead nor
  /// quarantined.
  bool node_available(cluster::NodeId node) const {
    return dead_nodes_.count(node) == 0 &&
           quarantined_nodes_.count(node) == 0;
  }
  /// Moves the node's free slots out of / back into the assignment pool
  /// when its combined availability flipped.
  void sync_node_pool(cluster::NodeId node, bool was_available);

  util::TimeNs locality_wait_;
  std::vector<Executor> executors_;
  /// FIFO queue: monotonically increasing sequence number -> task.
  std::map<std::int64_t, Pending> queue_;
  std::int64_t next_seq_ = 0;
  // Waiting-task indexes.
  std::set<std::int64_t> no_pref_;    // seqs of tasks without preference
  std::set<std::int64_t> with_pref_;  // seqs of tasks with preference
  std::map<cluster::NodeId, std::set<std::int64_t>> waiting_by_node_;
  // Free-slot indexes (executor indices with free > 0 on live nodes).
  std::map<cluster::NodeId, std::set<int>> free_by_node_;
  std::set<int> free_execs_;
  std::set<cluster::NodeId> dead_nodes_;
  std::set<cluster::NodeId> quarantined_nodes_;
  int free_total_ = 0;
  std::int64_t local_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace evolve::dataflow
