// Executor slot management with delay scheduling (locality waits).
//
// Tasks queue FIFO with an optional preferred-node set. The scheduler
// assigns a task to a preferred executor immediately; a task with
// preferences only falls back to a non-preferred executor after waiting
// `locality_wait` (0 disables delay scheduling: immediate fallback).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/types.hpp"

namespace evolve::dataflow {

using TaskId = std::int64_t;

struct Assignment {
  TaskId task;
  int executor;
  bool local;  // assigned to a preferred node
};

class TaskScheduler {
 public:
  explicit TaskScheduler(util::TimeNs locality_wait)
      : locality_wait_(locality_wait) {}

  /// Registers an executor with `slots` concurrent task slots.
  /// Returns the executor index.
  int add_executor(cluster::NodeId node, int slots);

  cluster::NodeId executor_node(int executor) const;
  int executor_count() const { return static_cast<int>(executors_.size()); }
  int free_slots() const;

  /// Queues a task; `preferred` may be empty (no locality preference).
  void enqueue(TaskId task, std::vector<cluster::NodeId> preferred,
               util::TimeNs now);

  /// Frees one slot on `executor` (its task finished).
  void release(int executor);

  /// Assigns as many queued tasks as possible at time `now`.
  std::vector<Assignment> assign(util::TimeNs now);

  /// Earliest time a waiting preferred task becomes eligible for remote
  /// fallback; -1 when no such task exists.
  util::TimeNs next_expiry() const;

  int pending() const { return static_cast<int>(queue_.size()); }
  std::int64_t local_assignments() const { return local_; }
  std::int64_t total_assignments() const { return total_; }

 private:
  struct Executor {
    cluster::NodeId node;
    int free;
  };
  struct Pending {
    TaskId task;
    std::vector<cluster::NodeId> preferred;
    util::TimeNs enqueued;
  };

  int find_free_preferred(const std::vector<cluster::NodeId>& preferred) const;
  int find_any_free() const;

  util::TimeNs locality_wait_;
  std::vector<Executor> executors_;
  std::deque<Pending> queue_;
  std::int64_t local_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace evolve::dataflow
