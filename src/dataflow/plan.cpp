#include "dataflow/plan.hpp"

#include <stdexcept>
#include <vector>

namespace evolve::dataflow {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kSource: return "source";
    case OpKind::kMap: return "map";
    case OpKind::kFilter: return "filter";
    case OpKind::kFlatMap: return "flatMap";
    case OpKind::kGroupBy: return "groupBy";
    case OpKind::kReduceByKey: return "reduceByKey";
    case OpKind::kJoin: return "join";
    case OpKind::kUnion: return "union";
    case OpKind::kSink: return "sink";
  }
  return "?";
}

bool is_wide(OpKind kind) {
  return kind == OpKind::kGroupBy || kind == OpKind::kReduceByKey ||
         kind == OpKind::kJoin || kind == OpKind::kUnion;
}

int LogicalPlan::add(Operator op) {
  for (int input : op.inputs) {
    if (input < 0 || input >= size()) {
      throw std::invalid_argument("operator input out of range");
    }
    if (ops_[static_cast<std::size_t>(input)].kind == OpKind::kSink) {
      throw std::invalid_argument("cannot consume a sink");
    }
  }
  if (op.selectivity < 0) throw std::invalid_argument("negative selectivity");
  if (op.cpu_ns_per_byte < 0) throw std::invalid_argument("negative cpu cost");
  op.id = size();
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

int LogicalPlan::add_source(const std::string& dataset) {
  if (dataset.empty()) throw std::invalid_argument("source needs a dataset");
  Operator op;
  op.kind = OpKind::kSource;
  op.name = "source(" + dataset + ")";
  op.dataset = dataset;
  op.cpu_ns_per_byte = 0.05;  // deserialization
  return add(std::move(op));
}

int LogicalPlan::add_map(int input, const std::string& name,
                         double selectivity, double cpu_ns_per_byte) {
  Operator op;
  op.kind = OpKind::kMap;
  op.name = name;
  op.inputs = {input};
  op.selectivity = selectivity;
  op.cpu_ns_per_byte = cpu_ns_per_byte;
  return add(std::move(op));
}

int LogicalPlan::add_filter(int input, const std::string& name,
                            double selectivity, double cpu_ns_per_byte) {
  if (selectivity > 1.0) {
    throw std::invalid_argument("filter cannot grow data");
  }
  Operator op;
  op.kind = OpKind::kFilter;
  op.name = name;
  op.inputs = {input};
  op.selectivity = selectivity;
  op.cpu_ns_per_byte = cpu_ns_per_byte;
  return add(std::move(op));
}

int LogicalPlan::add_flat_map(int input, const std::string& name,
                              double selectivity, double cpu_ns_per_byte) {
  Operator op;
  op.kind = OpKind::kFlatMap;
  op.name = name;
  op.inputs = {input};
  op.selectivity = selectivity;
  op.cpu_ns_per_byte = cpu_ns_per_byte;
  return add(std::move(op));
}

int LogicalPlan::add_group_by(int input, const std::string& name,
                              int partitions, double selectivity,
                              double cpu_ns_per_byte) {
  Operator op;
  op.kind = OpKind::kGroupBy;
  op.name = name;
  op.inputs = {input};
  op.selectivity = selectivity;
  op.cpu_ns_per_byte = cpu_ns_per_byte;
  op.output_partitions = partitions;
  return add(std::move(op));
}

int LogicalPlan::add_reduce_by_key(int input, const std::string& name,
                                   int partitions, double selectivity,
                                   double cpu_ns_per_byte) {
  Operator op;
  op.kind = OpKind::kReduceByKey;
  op.name = name;
  op.inputs = {input};
  op.selectivity = selectivity;
  op.cpu_ns_per_byte = cpu_ns_per_byte;
  op.output_partitions = partitions;
  return add(std::move(op));
}

int LogicalPlan::add_join(int left, int right, const std::string& name,
                          int partitions, double selectivity,
                          double cpu_ns_per_byte) {
  Operator op;
  op.kind = OpKind::kJoin;
  op.name = name;
  op.inputs = {left, right};
  op.selectivity = selectivity;
  op.cpu_ns_per_byte = cpu_ns_per_byte;
  op.output_partitions = partitions;
  return add(std::move(op));
}

int LogicalPlan::add_union(int left, int right, const std::string& name) {
  Operator op;
  op.kind = OpKind::kUnion;
  op.name = name;
  op.inputs = {left, right};
  op.cpu_ns_per_byte = 0.05;
  return add(std::move(op));
}

int LogicalPlan::add_sink(int input, const std::string& dataset) {
  if (dataset.empty()) throw std::invalid_argument("sink needs a dataset");
  Operator op;
  op.kind = OpKind::kSink;
  op.name = "sink(" + dataset + ")";
  op.inputs = {input};
  op.dataset = dataset;
  op.cpu_ns_per_byte = 0.05;  // serialization
  return add(std::move(op));
}

const Operator& LogicalPlan::op(int id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("bad operator id");
  return ops_[static_cast<std::size_t>(id)];
}

void LogicalPlan::validate() const {
  if (ops_.empty()) throw std::invalid_argument("empty plan");
  std::vector<int> consumers(ops_.size(), 0);
  int sinks = 0;
  for (const Operator& op : ops_) {
    if (op.kind == OpKind::kSink) ++sinks;
    for (int input : op.inputs) {
      ++consumers[static_cast<std::size_t>(input)];
    }
  }
  if (sinks != 1) {
    throw std::invalid_argument("plan must have exactly one sink");
  }
  for (const Operator& op : ops_) {
    const int uses = consumers[static_cast<std::size_t>(op.id)];
    if (op.kind == OpKind::kSink) {
      if (uses != 0) throw std::invalid_argument("sink must not be consumed");
    } else if (uses != 1) {
      throw std::invalid_argument("operator '" + op.name +
                                  "' must be consumed exactly once");
    }
  }
}

LogicalPlan LogicalPlan::from_operators(std::vector<Operator> ops) {
  const int n = static_cast<int>(ops.size());
  for (int i = 0; i < n; ++i) {
    if (ops[static_cast<std::size_t>(i)].id != i) {
      throw std::invalid_argument("operator ids must be dense 0..n-1");
    }
  }
  // Kahn topological sort over input edges.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  for (const Operator& op : ops) {
    for (int input : op.inputs) {
      if (input < 0 || input >= n) {
        throw std::invalid_argument("operator input out of range");
      }
      ++indegree[static_cast<std::size_t>(op.id)];
      consumers[static_cast<std::size_t>(input)].push_back(op.id);
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const int id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (int consumer : consumers[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw std::invalid_argument("operator graph has a cycle");
  }
  // Renumber in topological order.
  std::vector<int> new_id(static_cast<std::size_t>(n));
  for (int pos = 0; pos < n; ++pos) {
    new_id[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] =
        pos;
  }
  LogicalPlan plan;
  plan.ops_.resize(static_cast<std::size_t>(n));
  for (Operator& op : ops) {
    Operator moved = std::move(op);
    const int id = new_id[static_cast<std::size_t>(moved.id)];
    moved.id = id;
    for (int& input : moved.inputs) {
      input = new_id[static_cast<std::size_t>(input)];
    }
    plan.ops_[static_cast<std::size_t>(id)] = std::move(moved);
  }
  plan.validate();
  return plan;
}

int LogicalPlan::sink() const {
  validate();
  for (const Operator& op : ops_) {
    if (op.kind == OpKind::kSink) return op.id;
  }
  throw std::logic_error("unreachable: validated plan lacks sink");
}

}  // namespace evolve::dataflow
