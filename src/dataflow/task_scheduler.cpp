#include "dataflow/task_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::dataflow {

int TaskScheduler::add_executor(cluster::NodeId node, int slots) {
  if (slots <= 0) throw std::invalid_argument("executor needs slots");
  executors_.push_back(Executor{node, slots});
  return static_cast<int>(executors_.size()) - 1;
}

cluster::NodeId TaskScheduler::executor_node(int executor) const {
  return executors_.at(static_cast<std::size_t>(executor)).node;
}

int TaskScheduler::free_slots() const {
  int total = 0;
  for (const Executor& e : executors_) total += e.free;
  return total;
}

void TaskScheduler::enqueue(TaskId task,
                            std::vector<cluster::NodeId> preferred,
                            util::TimeNs now) {
  queue_.push_back(Pending{task, std::move(preferred), now});
}

void TaskScheduler::release(int executor) {
  Executor& e = executors_.at(static_cast<std::size_t>(executor));
  ++e.free;
}

int TaskScheduler::find_free_preferred(
    const std::vector<cluster::NodeId>& preferred) const {
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    if (executors_[i].free <= 0) continue;
    if (std::find(preferred.begin(), preferred.end(), executors_[i].node) !=
        preferred.end()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int TaskScheduler::find_any_free() const {
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    if (executors_[i].free > 0) return static_cast<int>(i);
  }
  return -1;
}

std::vector<Assignment> TaskScheduler::assign(util::TimeNs now) {
  std::vector<Assignment> out;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      int executor = -1;
      bool local = false;
      if (!it->preferred.empty()) {
        executor = find_free_preferred(it->preferred);
        if (executor >= 0) {
          local = true;
        } else if (now - it->enqueued >= locality_wait_) {
          executor = find_any_free();
        }
      } else {
        executor = find_any_free();
      }
      if (executor < 0) continue;
      --executors_[static_cast<std::size_t>(executor)].free;
      out.push_back(Assignment{it->task, executor, local});
      ++total_;
      if (local) ++local_;
      queue_.erase(it);
      progress = true;
      break;  // restart scan: slot state changed
    }
  }
  return out;
}

util::TimeNs TaskScheduler::next_expiry() const {
  util::TimeNs best = -1;
  for (const Pending& p : queue_) {
    if (p.preferred.empty()) continue;
    const util::TimeNs expiry = p.enqueued + locality_wait_;
    if (best < 0 || expiry < best) best = expiry;
  }
  return best;
}

}  // namespace evolve::dataflow
