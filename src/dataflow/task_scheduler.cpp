#include "dataflow/task_scheduler.hpp"

#include <limits>
#include <stdexcept>

namespace evolve::dataflow {

namespace {
constexpr std::int64_t kNoSeq = std::numeric_limits<std::int64_t>::max();
}

int TaskScheduler::add_executor(cluster::NodeId node, int slots) {
  if (slots <= 0) throw std::invalid_argument("executor needs slots");
  const int index = static_cast<int>(executors_.size());
  executors_.push_back(Executor{node, slots});
  free_by_node_[node].insert(index);
  free_execs_.insert(index);
  free_total_ += slots;
  return index;
}

cluster::NodeId TaskScheduler::executor_node(int executor) const {
  return executors_.at(static_cast<std::size_t>(executor)).node;
}

void TaskScheduler::enqueue(TaskId task,
                            std::vector<cluster::NodeId> preferred,
                            util::TimeNs now) {
  const std::int64_t seq = next_seq_++;
  if (preferred.empty()) {
    no_pref_.insert(seq);
  } else {
    with_pref_.insert(seq);
    for (cluster::NodeId node : preferred) waiting_by_node_[node].insert(seq);
  }
  queue_.emplace(seq, Pending{task, std::move(preferred), now});
}

void TaskScheduler::release(int executor) {
  Executor& e = executors_.at(static_cast<std::size_t>(executor));
  ++e.free;
  // Slots on dead or quarantined nodes return to the pool on revival.
  if (!node_available(e.node)) return;
  ++free_total_;
  if (e.free == 1) {
    free_by_node_[e.node].insert(executor);
    free_execs_.insert(executor);
  }
}

void TaskScheduler::set_node_alive(cluster::NodeId node, bool alive) {
  const bool was_available = node_available(node);
  if (alive) {
    if (dead_nodes_.erase(node) == 0) return;
  } else {
    if (!dead_nodes_.insert(node).second) return;
  }
  sync_node_pool(node, was_available);
}

void TaskScheduler::set_node_quarantined(cluster::NodeId node,
                                         bool quarantined) {
  const bool was_available = node_available(node);
  if (quarantined) {
    if (!quarantined_nodes_.insert(node).second) return;
  } else {
    if (quarantined_nodes_.erase(node) == 0) return;
  }
  sync_node_pool(node, was_available);
}

void TaskScheduler::sync_node_pool(cluster::NodeId node, bool was_available) {
  const bool available = node_available(node);
  if (available == was_available) return;
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    const Executor& e = executors_[i];
    if (e.node != node || e.free <= 0) continue;
    if (available) {
      free_total_ += e.free;
      free_by_node_[node].insert(static_cast<int>(i));
      free_execs_.insert(static_cast<int>(i));
    } else {
      free_total_ -= e.free;
      auto it = free_by_node_.find(node);
      if (it != free_by_node_.end()) {
        it->second.erase(static_cast<int>(i));
        if (it->second.empty()) free_by_node_.erase(it);
      }
      free_execs_.erase(static_cast<int>(i));
    }
  }
}

void TaskScheduler::take_slot(int executor) {
  Executor& e = executors_[static_cast<std::size_t>(executor)];
  --e.free;
  --free_total_;
  if (e.free == 0) {
    auto it = free_by_node_.find(e.node);
    it->second.erase(executor);
    if (it->second.empty()) free_by_node_.erase(it);
    free_execs_.erase(executor);
  }
}

void TaskScheduler::remove_task(std::int64_t seq, const Pending& task) {
  if (task.preferred.empty()) {
    no_pref_.erase(seq);
  } else {
    with_pref_.erase(seq);
    for (cluster::NodeId node : task.preferred) {
      auto it = waiting_by_node_.find(node);
      it->second.erase(seq);
      if (it->second.empty()) waiting_by_node_.erase(it);
    }
  }
  queue_.erase(seq);
}

int TaskScheduler::find_free_preferred(
    const std::vector<cluster::NodeId>& preferred) const {
  int best = -1;
  for (cluster::NodeId node : preferred) {
    auto it = free_by_node_.find(node);
    if (it == free_by_node_.end()) continue;
    const int executor = *it->second.begin();
    if (best < 0 || executor < best) best = executor;
  }
  return best;
}

std::vector<Assignment> TaskScheduler::assign(util::TimeNs now) {
  std::vector<Assignment> out;
  while (free_total_ > 0 && !queue_.empty()) {
    // Candidate A: earliest waiting task whose preferred-node set has a
    // free executor. Walk the smaller of the two node indexes.
    std::int64_t a_seq = kNoSeq;
    if (waiting_by_node_.size() <= free_by_node_.size()) {
      for (const auto& [node, seqs] : waiting_by_node_) {
        if (*seqs.begin() < a_seq && free_by_node_.count(node) != 0) {
          a_seq = *seqs.begin();
        }
      }
    } else {
      for (const auto& [node, execs] : free_by_node_) {
        (void)execs;
        auto it = waiting_by_node_.find(node);
        if (it != waiting_by_node_.end() && *it->second.begin() < a_seq) {
          a_seq = *it->second.begin();
        }
      }
    }
    // Candidate B: earliest task eligible for a non-preferred executor —
    // no-preference tasks, plus the head preferred task once its locality
    // wait expired (FIFO enqueue times ⇒ it is always the first to expire).
    std::int64_t b_seq = no_pref_.empty() ? kNoSeq : *no_pref_.begin();
    if (!with_pref_.empty()) {
      const std::int64_t head = *with_pref_.begin();
      if (head < b_seq &&
          now - queue_.find(head)->second.enqueued >= locality_wait_) {
        b_seq = head;
      }
    }
    const std::int64_t seq = std::min(a_seq, b_seq);
    if (seq == kNoSeq) break;
    const Pending& task = queue_.find(seq)->second;
    // A task that is both expired and preferred-free assigns locally, so
    // ties between the candidates resolve in favour of A.
    const bool local = seq == a_seq;
    const int executor =
        local ? find_free_preferred(task.preferred) : *free_execs_.begin();
    take_slot(executor);
    out.push_back(Assignment{task.task, executor, local});
    ++total_;
    if (local) ++local_;
    remove_task(seq, task);
  }
  return out;
}

util::TimeNs TaskScheduler::next_expiry() const {
  if (with_pref_.empty()) return -1;
  return queue_.find(*with_pref_.begin())->second.enqueued + locality_wait_;
}

}  // namespace evolve::dataflow
