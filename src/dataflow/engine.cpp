#include "dataflow/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "util/backoff.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace evolve::dataflow {

struct DataflowEngine::RunState {
  PhysicalPlan plan;
  TaskScheduler scheduler;
  ShuffleManager shuffle;
  JobStats stats;
  util::TimeNs start_time = 0;
  Callback on_done;
  util::Rng rng;

  struct StageRun {
    int num_tasks = 0;
    int done_tasks = 0;
    int pending_parents = 0;
    int children_remaining = 0;  // for shuffle-output release
    bool finished_once = false;  // children already started / released
    std::vector<util::TimeNs> durations;  // completed task durations
    StageStats stats;
    trace::SpanId span = trace::kNoSpan;
  };
  std::vector<StageRun> stage_runs;
  std::vector<std::vector<int>> children;

  /// One logical task; may have several racing copies (speculation).
  struct TaskDef {
    int stage = -1;
    int index = -1;
    bool winner_decided = false;  // a copy finished its compute phase
    bool completed = false;       // winner finished its output phase
    bool speculated = false;      // a backup copy was launched
    bool retry_pending = false;   // a fault-driven re-enqueue is armed
    int copies_running = 0;
    int fault_retries = 0;        // re-executions consumed by failures
    util::TimeNs first_start = -1;
    util::TimeNs killed_at = -1;  // when the task was last lost
    TaskId winner_copy = -1;      // which copy won the compute race
    std::vector<cluster::NodeId> preferred;
  };
  /// Where each in-flight copy runs. A copy's continuations stay valid
  /// exactly while its entry exists: killing a copy erases it, so late
  /// io/fabric/timer callbacks become no-ops.
  struct CopyState {
    int executor = -1;
    cluster::NodeId node = cluster::kInvalidNode;
    util::TimeNs started = 0;  // service-time clock for health scoring
    trace::SpanId span = trace::kNoSpan;
  };
  std::map<TaskId, TaskDef> tasks;       // logical task id -> state
  std::map<TaskId, TaskId> copy_owner;   // scheduler copy id -> task id
  std::map<TaskId, CopyState> running_copies;
  std::vector<std::vector<TaskId>> stage_task_ids;  // stage -> index -> id
  TaskId next_id = 1;
  int stages_done = 0;
  bool expiry_armed = false;
  bool aborted = false;        // fail_job ran; drop all in-flight work
  bool done_reported = false;  // on_done already called
  trace::SpanId job_span = trace::kNoSpan;

  RunState(PhysicalPlan physical, util::TimeNs locality_wait,
           std::uint64_t seed, Callback cb)
      : plan(std::move(physical)),
        scheduler(locality_wait),
        on_done(std::move(cb)),
        rng(seed) {}

  TaskId new_copy_of(TaskId task) {
    const TaskId copy = next_id++;
    copy_owner[copy] = task;
    return copy;
  }
};

DataflowEngine::DataflowEngine(sim::Simulation& sim,
                               const cluster::Cluster& cluster,
                               net::Fabric& fabric, storage::IoSubsystem& io,
                               storage::DatasetCatalog& catalog,
                               DataflowConfig config)
    : sim_(sim),
      cluster_(cluster),
      fabric_(fabric),
      io_(io),
      catalog_(catalog),
      config_(config) {
  if (config_.default_parallelism <= 0) {
    throw std::invalid_argument("default_parallelism must be > 0");
  }
  if (config_.executor_core_speed <= 0) {
    throw std::invalid_argument("executor_core_speed must be > 0");
  }
  if (config_.straggler_probability < 0 || config_.straggler_probability > 1) {
    throw std::invalid_argument("straggler_probability must be in [0, 1]");
  }
  if (config_.straggler_slowdown < 1) {
    throw std::invalid_argument("straggler_slowdown must be >= 1");
  }
  if (config_.speculation_multiplier <= 1.0) {
    throw std::invalid_argument("speculation_multiplier must be > 1");
  }
  if (config_.max_task_retries < 0) {
    throw std::invalid_argument("max_task_retries must be >= 0");
  }
  if (config_.retry_backoff <= 0) {
    throw std::invalid_argument("retry_backoff must be > 0");
  }
}

void DataflowEngine::run(const LogicalPlan& plan,
                         const std::vector<ExecutorSpec>& executors,
                         Callback on_done) {
  if (executors.empty()) {
    throw std::invalid_argument("dataflow job needs executors");
  }
  auto run = std::make_shared<RunState>(
      PhysicalPlan::compile(plan), config_.locality_wait,
      config_.straggler_seed, std::move(on_done));
  run->start_time = sim_.now();
  for (const ExecutorSpec& exec : executors) {
    if (exec.node < 0 || exec.node >= cluster_.size()) {
      throw std::invalid_argument("executor on unknown node");
    }
    run->scheduler.add_executor(exec.node, exec.slots);
  }

  run->children = run->plan.children();
  run->stage_runs.resize(static_cast<std::size_t>(run->plan.size()));
  run->stage_task_ids.resize(static_cast<std::size_t>(run->plan.size()));
  for (const StageDef& stage : run->plan.stages()) {
    auto& sr = run->stage_runs[static_cast<std::size_t>(stage.id)];
    sr.pending_parents = static_cast<int>(stage.parents.size());
    sr.children_remaining = static_cast<int>(
        run->children[static_cast<std::size_t>(stage.id)].size());
    sr.stats.id = stage.id;
    if (stage.reads_source()) {
      if (!catalog_.defined(stage.source_dataset) ||
          !catalog_.materialized(stage.source_dataset)) {
        throw std::invalid_argument("source dataset not materialized: " +
                                    stage.source_dataset);
      }
    }
    if (stage.writes_sink()) {
      catalog_.store().create_bucket(stage.sink_dataset);
    }
  }
  metrics_.count("jobs_started");
  prune_runs();
  runs_.push_back(run);
  if (tracer_) {
    // Parented by the caller's context (e.g. a workflow step span).
    run->job_span = tracer_->begin(trace::Layer::kDataflow, "df.job");
    tracer_->set_job(run->job_span, next_trace_job_++);
    tracer_->annotate(run->job_span, "stages",
                      std::to_string(run->plan.size()));
  }
  for (const StageDef& stage : run->plan.stages()) {
    if (stage.parents.empty()) start_stage(run, stage.id);
  }
}

void DataflowEngine::start_stage(std::shared_ptr<RunState> run,
                                 int stage_id) {
  const StageDef& def = run->plan.stage(stage_id);
  auto& sr = run->stage_runs[static_cast<std::size_t>(stage_id)];
  sr.stats.start_time = sim_.now();
  if (tracer_) {
    sr.span =
        tracer_->begin(trace::Layer::kDataflow, "df.stage", run->job_span);
    tracer_->annotate(sr.span, "stage", std::to_string(stage_id));
  }

  if (def.reads_source()) {
    sr.num_tasks = catalog_.spec(def.source_dataset).partitions;
  } else {
    sr.num_tasks = def.requested_partitions > 0 ? def.requested_partitions
                                                : config_.default_parallelism;
  }
  sr.stats.tasks = sr.num_tasks;
  run->stats.tasks += sr.num_tasks;

  auto& ids = run->stage_task_ids[static_cast<std::size_t>(stage_id)];
  for (int i = 0; i < sr.num_tasks; ++i) {
    const TaskId id = run->next_id++;
    RunState::TaskDef task;
    task.stage = stage_id;
    task.index = i;
    if (def.reads_source()) {
      const auto key =
          storage::partition_key(catalog_.spec(def.source_dataset), i);
      task.preferred = catalog_.store().locate(key);
    }
    run->copy_owner[id] = id;  // the original copy is its own task
    ids.push_back(id);
    auto preferred = task.preferred;
    run->tasks.emplace(id, std::move(task));
    run->scheduler.enqueue(id, std::move(preferred), sim_.now());
  }
  pump_tasks(run);
}

void DataflowEngine::pump_tasks(std::shared_ptr<RunState> run) {
  if (run->aborted) return;
  const auto assignments = run->scheduler.assign(sim_.now());
  for (const Assignment& a : assignments) {
    execute_copy(run, a.task, a.executor, a.local);
  }
  // Delay scheduling: if tasks are holding out for locality while slots
  // are free, revisit when the earliest wait expires.
  if (!run->expiry_armed && run->scheduler.pending() > 0 &&
      run->scheduler.free_slots() > 0) {
    const util::TimeNs expiry = run->scheduler.next_expiry();
    if (expiry >= 0) {
      run->expiry_armed = true;
      const util::TimeNs delay =
          expiry > sim_.now() ? expiry - sim_.now() : 0;
      sim_.after(delay, [this, run] {
        run->expiry_armed = false;
        pump_tasks(run);
      });
    }
  }
}

void DataflowEngine::release_copy(std::shared_ptr<RunState> run,
                                  int executor) {
  run->scheduler.release(executor);
  pump_tasks(run);
}

void DataflowEngine::execute_copy(std::shared_ptr<RunState> run, TaskId copy,
                                  int executor, bool local) {
  if (run->aborted) return;
  const TaskId task_id = run->copy_owner.at(copy);
  RunState::TaskDef& task = run->tasks.at(task_id);
  const bool is_backup = (copy != task_id);
  const int stage_id = task.stage;
  const int index = task.index;
  const StageDef& def = run->plan.stage(stage_id);
  auto& sr = run->stage_runs[static_cast<std::size_t>(stage_id)];

  // The race may already be over by the time a backup gets a slot.
  if (task.winner_decided || task.completed) {
    release_copy(run, executor);
    return;
  }
  ++task.copies_running;
  if (task.first_start < 0) task.first_start = sim_.now();
  if (local && !is_backup) {
    ++sr.stats.local_tasks;
    ++run->stats.local_tasks;
  }
  const cluster::NodeId node = run->scheduler.executor_node(executor);
  trace::SpanId copy_span = trace::kNoSpan;
  if (tracer_) {
    copy_span = tracer_->begin(trace::Layer::kDataflow, "df.task", sr.span);
    tracer_->set_task(copy_span, index);
    tracer_->annotate(copy_span, "node", std::to_string(node));
    if (is_backup) tracer_->annotate(copy_span, "backup", "1");
    if (task.fault_retries > 0) {
      tracer_->annotate(copy_span, "attempt",
                        std::to_string(task.fault_retries));
    }
  }
  run->running_copies[copy] =
      RunState::CopyState{executor, node, sim_.now(), copy_span};
  if (task.killed_at >= 0) {
    metrics_.observe("reschedule_latency_ms",
                     (sim_.now() - task.killed_at) / util::kMillisecond);
    task.killed_at = -1;
  }

  // Phases 3+4 (compute then output), once input has landed.
  auto compute_and_output = [this, run, task_id, copy, copy_span, executor,
                             stage_id, index, node, is_backup, &def,
                             &sr](util::Bytes input_bytes) {
    if (run->running_copies.count(copy) == 0) return;  // killed mid-input
    sr.stats.input_bytes += input_bytes;
    double speed =
        config_.executor_core_speed * cluster_.node(node).core_speed;
    const auto slow = node_slowdown_.find(node);
    if (slow != node_slowdown_.end()) speed /= slow->second;
    double compute_ns =
        static_cast<double>(input_bytes) * def.cpu_ns_per_byte / speed;
    if (config_.straggler_probability > 0 &&
        run->rng.chance(config_.straggler_probability)) {
      compute_ns *= config_.straggler_slowdown;
      ++run->stats.stragglers_injected;
      metrics_.count("stragglers_injected");
    }
    const trace::SpanId compute_span = trace::begin_span(
        tracer_, trace::Layer::kDataflow, "df.compute", copy_span);
    sim_.after(static_cast<util::TimeNs>(std::ceil(compute_ns)), [this, run,
                                                                  task_id,
                                                                  copy,
                                                                  copy_span,
                                                                  compute_span,
                                                                  executor,
                                                                  stage_id,
                                                                  index, node,
                                                                  is_backup,
                                                                  &def, &sr,
                                                                  input_bytes] {
      trace::end_span(tracer_, compute_span);
      auto it = run->running_copies.find(copy);
      if (it == run->running_copies.end()) return;  // killed mid-compute
      // Every finished compute is a health sample for its node — losers
      // included (slow copies are exactly the interesting signal).
      if (task_observer_) task_observer_(node, sim_.now() - it->second.started);
      RunState::TaskDef& task = run->tasks.at(task_id);
      if (task.winner_decided) {
        // Lost the race: the work is discarded.
        if (tracer_) tracer_->annotate(copy_span, "outcome", "lost_race");
        trace::end_span(tracer_, copy_span);
        run->running_copies.erase(it);
        --task.copies_running;
        metrics_.count("speculative_losses");
        release_copy(run, executor);
        return;
      }
      task.winner_decided = true;
      task.winner_copy = copy;
      if (is_backup) {
        ++run->stats.speculative_wins;
        metrics_.count("speculative_wins");
      }
      const auto output = static_cast<util::Bytes>(std::llround(
          static_cast<double>(input_bytes) * def.output_ratio));
      sr.stats.output_bytes += output;
      auto complete = [this, run, task_id, copy, copy_span, executor] {
        auto it = run->running_copies.find(copy);
        if (it == run->running_copies.end()) return;  // killed mid-output
        trace::end_span(tracer_, copy_span);
        run->running_copies.erase(it);
        RunState::TaskDef& task = run->tasks.at(task_id);
        --task.copies_running;
        task.completed = true;
        task_won(run, task_id);
        release_copy(run, executor);
      };
      if (def.writes_sink()) {
        run->stats.bytes_written += output;
        char name[32];
        std::snprintf(name, sizeof(name), "part-%05d", index);
        // The store's put span parents under this copy's span.
        trace::ScopedContext tctx(tracer_, copy_span);
        catalog_.store().put(node, {def.sink_dataset, name}, output,
                             std::move(complete));
      } else {
        run->shuffle.register_output(stage_id, index, node, output);
        const trace::SpanId spill_span = trace::begin_span(
            tracer_, trace::Layer::kShuffle, "df.spill", copy_span);
        io_.device(node, config_.shuffle_device)
            .submit(storage::IoKind::kWrite, output,
                    [this, spill_span, complete = std::move(complete)] {
                      trace::end_span(tracer_, spill_span);
                      complete();
                    });
      }
    });
  };

  sim_.after(config_.task_launch_overhead, [this, run, task_id, copy,
                                            copy_span, executor, node,
                                            stage_id, index, &def,
                                            compute_and_output] {
    if (run->running_copies.count(copy) == 0) return;  // killed on launch
    if (def.reads_source()) {
      const auto key =
          storage::partition_key(catalog_.spec(def.source_dataset), index);
      // The store's get span parents under this copy's span.
      trace::ScopedContext tctx(tracer_, copy_span);
      catalog_.store().get(
          node, key,
          [this, run, task_id, copy, copy_span, executor,
           compute_and_output](const storage::GetResult& result) {
            if (run->running_copies.count(copy) == 0) return;
            if (!result.found) {
              // Source partition unreadable (all replicas down). Back
              // off on the task's fault budget; the store may repair
              // the partition before the budget runs out.
              if (tracer_) {
                tracer_->annotate(copy_span, "outcome", "read_failure");
              }
              trace::end_span(tracer_, copy_span);
              run->running_copies.erase(copy);
              RunState::TaskDef& task = run->tasks.at(task_id);
              --task.copies_running;
              if (task.winner_copy == copy) {
                task.winner_decided = false;
                task.winner_copy = -1;
              }
              task.killed_at = sim_.now();
              metrics_.count("source_read_failures");
              retry_task(run, task_id);
              if (!run->aborted) release_copy(run, executor);
              return;
            }
            run->stats.bytes_read += result.size;
            compute_and_output(result.size);
          });
      return;
    }
    // Shuffle read: pull this reducer's share of every parent map output.
    const auto& sr = run->stage_runs[static_cast<std::size_t>(stage_id)];
    bool parents_ready = true;
    for (int parent : def.parents) {
      const auto& pr = run->stage_runs[static_cast<std::size_t>(parent)];
      if (!run->shuffle.complete(parent, pr.num_tasks)) {
        parents_ready = false;
        break;
      }
    }
    if (!parents_ready) {
      // A parent map output is being rebuilt after a node crash. Park
      // this copy and retry later without consuming the fault budget.
      if (tracer_) tracer_->annotate(copy_span, "outcome", "parked");
      trace::end_span(tracer_, copy_span);
      run->running_copies.erase(copy);
      RunState::TaskDef& task = run->tasks.at(task_id);
      --task.copies_running;
      metrics_.count("reducer_input_waits");
      sim_.after(config_.retry_backoff, [this, run, copy] {
        if (run->aborted) return;
        const TaskId task_id = run->copy_owner.at(copy);
        RunState::TaskDef& task = run->tasks.at(task_id);
        if (task.completed || task.winner_decided || task.copies_running > 0) {
          return;
        }
        run->scheduler.enqueue(copy, task.preferred, sim_.now());
        pump_tasks(run);
      });
      release_copy(run, executor);
      return;
    }
    std::vector<FetchSource> plan;
    for (int parent : def.parents) {
      const auto part = run->shuffle.fetch_plan(parent, index, sr.num_tasks);
      plan.insert(plan.end(), part.begin(), part.end());
    }
    util::Bytes total = 0;
    for (const FetchSource& src : plan) total += src.bytes;
    run->stats.bytes_shuffled += total;
    if (plan.empty()) {
      compute_and_output(0);
      return;
    }
    const trace::SpanId fetch_span = trace::begin_span(
        tracer_, trace::Layer::kShuffle, "df.fetch", copy_span);
    if (fetch_span != trace::kNoSpan) {
      tracer_->annotate(fetch_span, "bytes", std::to_string(total));
      tracer_->annotate(fetch_span, "sources", std::to_string(plan.size()));
    }
    auto remaining = std::make_shared<int>(static_cast<int>(plan.size()));
    for (const FetchSource& src : plan) {
      // Map-side disk read, then the network hop to this executor.
      io_.device(src.node, config_.shuffle_device)
          .submit(storage::IoKind::kRead, src.bytes,
                  [this, run, src, node, remaining, total, fetch_span,
                   compute_and_output] {
                    // The fabric's transfer span parents under the fetch.
                    trace::ScopedContext tctx(tracer_, fetch_span);
                    fabric_.transfer(src.node, node, src.bytes,
                                     [this, remaining, total, fetch_span,
                                      compute_and_output] {
                                       if (--*remaining == 0) {
                                         trace::end_span(tracer_, fetch_span);
                                         compute_and_output(total);
                                       }
                                     });
                  });
    }
  });
}

void DataflowEngine::task_won(std::shared_ptr<RunState> run, TaskId task_id) {
  RunState::TaskDef& task = run->tasks.at(task_id);
  auto& sr = run->stage_runs[static_cast<std::size_t>(task.stage)];
  sr.durations.push_back(sim_.now() - task.first_start);
  metrics_.count("tasks_completed");
  if (retry_budget_ != nullptr) retry_budget_->record_success();
  if (++sr.done_tasks >= sr.num_tasks) {
    finish_stage(run, task.stage);
    return;
  }
  maybe_speculate(run, task.stage);
}

void DataflowEngine::maybe_speculate(std::shared_ptr<RunState> run,
                                     int stage_id) {
  if (!config_.speculation) return;
  auto& sr = run->stage_runs[static_cast<std::size_t>(stage_id)];
  if (sr.done_tasks <
      static_cast<int>(config_.speculation_quantile * sr.num_tasks)) {
    return;
  }
  std::vector<util::TimeNs> sorted = sr.durations;
  std::sort(sorted.begin(), sorted.end());
  const util::TimeNs median = sorted[sorted.size() / 2];
  const auto threshold = static_cast<util::TimeNs>(
      config_.speculation_multiplier * static_cast<double>(median));

  for (auto& [id, task] : run->tasks) {
    if (task.stage != stage_id || task.winner_decided || task.speculated) {
      continue;
    }
    if (task.first_start < 0) continue;  // still queued: nothing to race
    if (sim_.now() - task.first_start <= threshold) continue;
    task.speculated = true;
    ++run->stats.speculative_launched;
    metrics_.count("speculative_launched");
    const TaskId backup = run->new_copy_of(id);
    run->scheduler.enqueue(backup, task.preferred, sim_.now());
  }
  pump_tasks(run);
}

void DataflowEngine::retry_task(std::shared_ptr<RunState> run,
                                TaskId task_id) {
  RunState::TaskDef& task = run->tasks.at(task_id);
  // A surviving copy (e.g. a speculative backup on a live node) is still
  // racing; it will finish the task without a re-enqueue.
  if (task.copies_running > 0 || task.retry_pending) return;
  if (!config_.fault_recovery ||
      task.fault_retries >= config_.max_task_retries) {
    fail_job(run);
    return;
  }
  if (retry_budget_ != nullptr && !retry_budget_->try_retry()) {
    // Budget empty: the cluster is failing faster than it is succeeding,
    // so another retry would only feed the storm. Defer WITHOUT
    // consuming a retry attempt; the probe re-enters retry_task and
    // proceeds once real completions have refilled the bucket.
    metrics_.count("task_retries_deferred");
    task.retry_pending = true;
    util::TimeNs delay = 4 * config_.retry_backoff;
    delay += static_cast<util::TimeNs>(run->rng.uniform(0.0, 0.25) *
                                       static_cast<double>(delay));
    sim_.after(delay, [this, run, task_id] {
      RunState::TaskDef& task = run->tasks.at(task_id);
      task.retry_pending = false;
      if (run->aborted) return;
      if (task.completed || task.winner_decided || task.copies_running > 0) {
        return;
      }
      retry_task(run, task_id);
    });
    return;
  }
  ++task.fault_retries;
  ++run->stats.task_retries;
  metrics_.count("task_retries");
  task.winner_decided = false;
  task.winner_copy = -1;
  task.speculated = false;
  task.first_start = -1;
  task.retry_pending = true;
  // Exponential backoff with seeded jitter: 1x, 2x, 4x, ... of the base,
  // each stretched by up to +25% so synchronized losses fan back out.
  // Saturates rather than shifting past 63 bits (signed-shift UB that
  // wraps to a delay in the past).
  util::TimeNs delay =
      util::saturating_backoff(config_.retry_backoff, task.fault_retries);
  delay += static_cast<util::TimeNs>(run->rng.uniform(0.0, 0.25) *
                                     static_cast<double>(delay));
  trace::SpanId retry_span = trace::kNoSpan;
  if (tracer_) {
    retry_span = tracer_->begin(
        trace::Layer::kScheduler, "df.retry_wait",
        run->stage_runs[static_cast<std::size_t>(task.stage)].span);
    tracer_->set_task(retry_span, task.index);
    tracer_->annotate(retry_span, "attempt",
                      std::to_string(task.fault_retries));
  }
  sim_.after(delay, [this, run, task_id, retry_span] {
    trace::end_span(tracer_, retry_span);
    RunState::TaskDef& task = run->tasks.at(task_id);
    task.retry_pending = false;
    if (run->aborted) return;
    if (task.completed || task.winner_decided || task.copies_running > 0) {
      return;
    }
    run->scheduler.enqueue(task_id, task.preferred, sim_.now());
    pump_tasks(run);
  });
}

void DataflowEngine::fail_job(std::shared_ptr<RunState> run) {
  if (run->done_reported) return;
  run->aborted = true;
  run->done_reported = true;
  run->stats.failed = true;
  run->stats.duration = sim_.now() - run->start_time;
  for (const auto& stage_run : run->stage_runs) {
    run->stats.stages.push_back(stage_run.stats);
  }
  metrics_.count("jobs_failed");
  if (tracer_) {
    for (const auto& [copy, cs] : run->running_copies) {
      tracer_->annotate(cs.span, "outcome", "job_failed");
      tracer_->end(cs.span);
    }
    for (const auto& stage_run : run->stage_runs) {
      tracer_->end(stage_run.span);  // idempotent; unstarted stages are
    }                                // kNoSpan and ignored
    tracer_->annotate(run->job_span, "outcome", "failed");
    tracer_->end(run->job_span);
  }
  // Invalidate every in-flight continuation in one sweep.
  run->running_copies.clear();
  if (run->on_done) run->on_done(run->stats);
}

void DataflowEngine::handle_node_failure(cluster::NodeId node) {
  for (const auto& weak : runs_) {
    auto run = weak.lock();
    if (!run || run->done_reported) continue;
    run->scheduler.set_node_alive(node, false);
    // 1. Kill running copies placed on the dead node.
    std::vector<TaskId> killed;
    for (const auto& [copy, cs] : run->running_copies) {
      if (cs.node == node) killed.push_back(copy);
    }
    for (TaskId copy : killed) {
      const RunState::CopyState cs = run->running_copies.at(copy);
      if (tracer_) {
        tracer_->annotate(cs.span, "outcome", "node_failure");
        tracer_->end(cs.span);
      }
      run->running_copies.erase(copy);
      const TaskId task_id = run->copy_owner.at(copy);
      RunState::TaskDef& task = run->tasks.at(task_id);
      --task.copies_running;
      if (task.winner_copy == copy) {
        task.winner_decided = false;
        task.winner_copy = -1;
      }
      task.killed_at = sim_.now();
      ++run->stats.tasks_killed;
      metrics_.count("tasks_killed");
      // Dead-aware release: the slot is parked until the node revives.
      run->scheduler.release(cs.executor);
      retry_task(run, task_id);
      if (run->aborted) break;
    }
    if (run->aborted) continue;
    // 2. Lost shuffle map outputs force re-execution of completed tasks.
    const auto lost = run->shuffle.drop_outputs_on(node);
    for (const auto& [stage, index] : lost) {
      const TaskId task_id =
          run->stage_task_ids[static_cast<std::size_t>(stage)]
                             [static_cast<std::size_t>(index)];
      RunState::TaskDef& task = run->tasks.at(task_id);
      ++run->stats.map_outputs_lost;
      metrics_.count("map_outputs_lost");
      // A not-yet-completed owner was handled by the kill sweep above
      // (its copy ran on the dead node), or a surviving copy will
      // re-register the output when it wins.
      if (!task.completed) continue;
      task.completed = false;
      task.winner_decided = false;
      task.winner_copy = -1;
      task.killed_at = sim_.now();
      --run->stage_runs[static_cast<std::size_t>(task.stage)].done_tasks;
      ++run->stats.tasks_reexecuted;
      metrics_.count("tasks_reexecuted");
      retry_task(run, task_id);
      if (run->aborted) break;
    }
    if (!run->aborted) pump_tasks(run);
  }
  prune_runs();
}

void DataflowEngine::handle_node_recovery(cluster::NodeId node) {
  for (const auto& weak : runs_) {
    auto run = weak.lock();
    if (!run || run->done_reported) continue;
    run->scheduler.set_node_alive(node, true);
    pump_tasks(run);
  }
  prune_runs();
}

void DataflowEngine::set_node_slowdown(cluster::NodeId node, double factor) {
  if (factor < 1.0) throw std::invalid_argument("slowdown must be >= 1");
  if (factor == 1.0) {
    node_slowdown_.erase(node);
  } else {
    node_slowdown_[node] = factor;
  }
}

void DataflowEngine::set_node_quarantined(cluster::NodeId node,
                                          bool quarantined) {
  for (const auto& weak : runs_) {
    auto run = weak.lock();
    if (!run || run->done_reported) continue;
    run->scheduler.set_node_quarantined(node, quarantined);
    if (!quarantined) pump_tasks(run);
  }
  prune_runs();
}

void DataflowEngine::speculate_on_node(cluster::NodeId node) {
  if (!config_.health_speculation) return;
  for (const auto& weak : runs_) {
    auto run = weak.lock();
    if (!run || run->done_reported || run->aborted) continue;
    std::vector<TaskId> owners;
    for (const auto& [copy, cs] : run->running_copies) {
      if (cs.node != node) continue;
      const TaskId task_id = run->copy_owner.at(copy);
      RunState::TaskDef& task = run->tasks.at(task_id);
      if (task.winner_decided || task.completed || task.speculated) continue;
      task.speculated = true;
      owners.push_back(task_id);
    }
    for (const TaskId task_id : owners) {
      RunState::TaskDef& task = run->tasks.at(task_id);
      ++run->stats.speculative_launched;
      metrics_.count("speculative_launched");
      metrics_.count("health_speculations");
      if (tracer_) {
        // Marker span: the decision to race a backup against a copy
        // stuck on an unhealthy node.
        const trace::SpanId span = tracer_->begin(
            trace::Layer::kDataflow, "df.speculate",
            run->stage_runs[static_cast<std::size_t>(task.stage)].span);
        tracer_->set_task(span, task.index);
        tracer_->annotate(span, "node", std::to_string(node));
        tracer_->end(span);
      }
      const TaskId backup = run->new_copy_of(task_id);
      run->scheduler.enqueue(backup, task.preferred, sim_.now());
    }
    if (!owners.empty()) pump_tasks(run);
  }
  prune_runs();
}

void DataflowEngine::prune_runs() {
  runs_.erase(std::remove_if(runs_.begin(), runs_.end(),
                             [](const std::weak_ptr<RunState>& w) {
                               return w.expired();
                             }),
              runs_.end());
}

void DataflowEngine::finish_stage(std::shared_ptr<RunState> run,
                                  int stage_id) {
  auto& sr = run->stage_runs[static_cast<std::size_t>(stage_id)];
  sr.stats.finish_time = sim_.now();
  // A stage can re-finish after fault-driven re-execution of a task
  // whose map output was lost; children were already started then.
  if (sr.finished_once) return;
  sr.finished_once = true;
  trace::end_span(tracer_, sr.span);
  ++run->stages_done;
  metrics_.count("stages_completed");

  // Parents' shuffle outputs can be freed once every consumer is done.
  const StageDef& def = run->plan.stage(stage_id);
  for (int parent : def.parents) {
    auto& pr = run->stage_runs[static_cast<std::size_t>(parent)];
    if (--pr.children_remaining == 0) run->shuffle.release(parent);
  }
  for (int child : run->children[static_cast<std::size_t>(stage_id)]) {
    auto& cr = run->stage_runs[static_cast<std::size_t>(child)];
    if (--cr.pending_parents == 0) start_stage(run, child);
  }

  if (run->stages_done == run->plan.size()) {
    // Register the sink dataset so downstream workflow steps can read it.
    const StageDef& last = run->plan.stage(run->plan.final_stage());
    if (last.writes_sink()) {
      auto& lsr = run->stage_runs[static_cast<std::size_t>(last.id)];
      storage::DatasetSpec spec;
      spec.name = last.sink_dataset;
      spec.partitions = lsr.num_tasks;
      spec.total_bytes = lsr.stats.output_bytes;
      catalog_.define(spec);
    }
    run->stats.duration = sim_.now() - run->start_time;
    for (const auto& stage_run : run->stage_runs) {
      run->stats.stages.push_back(stage_run.stats);
    }
    metrics_.count("jobs_completed");
    run->done_reported = true;
    trace::end_span(tracer_, run->job_span);
    if (run->on_done) run->on_done(run->stats);
  }
}

}  // namespace evolve::dataflow
