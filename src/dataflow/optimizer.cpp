#include "dataflow/optimizer.hpp"

#include <stdexcept>

namespace evolve::dataflow {

LogicalPlan rebuild_plan(std::vector<Operator> ops) {
  return LogicalPlan::from_operators(std::move(ops));
}

LogicalPlan optimize(const LogicalPlan& plan, OptimizerStats* stats) {
  plan.validate();
  std::vector<Operator> ops = plan.ops();
  OptimizerStats local;

  bool changed = true;
  while (changed) {
    changed = false;
    // Consumer map for the single-consumer check.
    std::vector<int> consumer(ops.size(), -1);
    std::vector<int> consumer_count(ops.size(), 0);
    for (const Operator& op : ops) {
      for (int input : op.inputs) {
        consumer[static_cast<std::size_t>(input)] = op.id;
        ++consumer_count[static_cast<std::size_t>(input)];
      }
    }
    for (Operator& filter : ops) {
      if (filter.kind != OpKind::kFilter) continue;
      Operator& upstream =
          ops[static_cast<std::size_t>(filter.inputs.at(0))];
      if (upstream.kind != OpKind::kMap &&
          upstream.kind != OpKind::kFlatMap) {
        continue;
      }
      if (consumer_count[static_cast<std::size_t>(upstream.id)] != 1) {
        continue;  // the transform feeds someone else too
      }
      // Swap edges: grandparent -> filter -> upstream -> (old consumer
      // of filter, patched below).
      const int grandparent = upstream.inputs.at(0);
      const int old_consumer = consumer[static_cast<std::size_t>(filter.id)];
      filter.inputs = {grandparent};
      upstream.inputs = {filter.id};
      if (old_consumer >= 0) {
        for (int& input :
             ops[static_cast<std::size_t>(old_consumer)].inputs) {
          if (input == filter.id) input = upstream.id;
        }
      }
      ++local.filters_pushed;
      changed = true;
      break;  // edges moved: rebuild the consumer map
    }
  }
  if (stats != nullptr) *stats = local;
  return rebuild_plan(std::move(ops));
}

}  // namespace evolve::dataflow
