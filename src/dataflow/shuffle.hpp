// Shuffle bookkeeping: map-side outputs and reduce-side fetch plans.
//
// Each map task registers where its output lives (node) and how many
// bytes it produced; a reduce task's fetch plan pulls an even share of
// every registered map output of every parent stage.
#pragma once

#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/types.hpp"

namespace evolve::dataflow {

struct MapOutput {
  cluster::NodeId node = cluster::kInvalidNode;
  util::Bytes bytes = 0;  // total across all reducers
};

struct FetchSource {
  cluster::NodeId node = cluster::kInvalidNode;
  util::Bytes bytes = 0;  // this reducer's share of one map output
};

class ShuffleManager {
 public:
  /// Registers one map task's output for `stage`.
  void register_output(int stage, int task, cluster::NodeId node,
                       util::Bytes bytes);

  /// True once `count` outputs are registered for the stage.
  bool complete(int stage, int count) const;

  /// Fetch plan for reducer `reducer` of `reducers` reading `stage`.
  /// Zero-byte shares are dropped.
  std::vector<FetchSource> fetch_plan(int stage, int reducer,
                                      int reducers) const;

  /// Total bytes produced by a stage's map outputs.
  util::Bytes stage_output_bytes(int stage) const;

  /// Frees a stage's outputs (all consumers done).
  void release(int stage);

  /// Drops every registered output living on `node` (node crash) and
  /// returns the (stage, task) pairs that lost data. Released stages are
  /// gone already and thus never reported.
  std::vector<std::pair<int, int>> drop_outputs_on(cluster::NodeId node);

 private:
  std::map<int, std::map<int, MapOutput>> outputs_;  // stage -> task -> out
};

}  // namespace evolve::dataflow
