// Rule-based logical-plan optimizer.
//
// Implemented rule: filter pushdown — a filter directly above a map or
// flatMap is swapped below it, so the expensive transform runs on fewer
// bytes. (Heuristic: assumes the filter predicate does not depend on
// columns the map creates, which holds for the byte-level cost model.)
// Applied to a fixpoint; output sizes are unchanged because
// selectivities commute.
#pragma once

#include "dataflow/plan.hpp"

namespace evolve::dataflow {

struct OptimizerStats {
  int filters_pushed = 0;
};

/// Returns an optimized copy of `plan` (which must validate).
LogicalPlan optimize(const LogicalPlan& plan,
                     OptimizerStats* stats = nullptr);

/// Rebuilds a plan from an edge-rewired operator set: topologically
/// sorts, renumbers, and validates. Used by optimizer rules; exposed for
/// writing new rules.
LogicalPlan rebuild_plan(std::vector<Operator> ops);

}  // namespace evolve::dataflow
