#include "dataflow/shuffle.hpp"

#include <stdexcept>

namespace evolve::dataflow {

void ShuffleManager::register_output(int stage, int task,
                                     cluster::NodeId node,
                                     util::Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("negative shuffle output");
  auto& stage_outputs = outputs_[stage];
  if (!stage_outputs.emplace(task, MapOutput{node, bytes}).second) {
    throw std::logic_error("duplicate map output registration");
  }
}

bool ShuffleManager::complete(int stage, int count) const {
  auto it = outputs_.find(stage);
  const int have = it == outputs_.end() ? 0 : static_cast<int>(it->second.size());
  return have >= count;
}

std::vector<FetchSource> ShuffleManager::fetch_plan(int stage, int reducer,
                                                    int reducers) const {
  if (reducers <= 0) throw std::invalid_argument("need >= 1 reducer");
  if (reducer < 0 || reducer >= reducers) {
    throw std::invalid_argument("reducer index out of range");
  }
  auto it = outputs_.find(stage);
  if (it == outputs_.end()) return {};
  std::vector<FetchSource> plan;
  plan.reserve(it->second.size());
  for (const auto& [task, output] : it->second) {
    // Even split with the remainder spread over the first reducers.
    const util::Bytes base = output.bytes / reducers;
    const util::Bytes extra = output.bytes % reducers;
    const util::Bytes share = base + (reducer < extra ? 1 : 0);
    if (share > 0) plan.push_back(FetchSource{output.node, share});
  }
  return plan;
}

util::Bytes ShuffleManager::stage_output_bytes(int stage) const {
  auto it = outputs_.find(stage);
  if (it == outputs_.end()) return 0;
  util::Bytes total = 0;
  for (const auto& [task, output] : it->second) total += output.bytes;
  return total;
}

std::vector<std::pair<int, int>> ShuffleManager::drop_outputs_on(
    cluster::NodeId node) {
  std::vector<std::pair<int, int>> lost;
  for (auto stage_it = outputs_.begin(); stage_it != outputs_.end();) {
    auto& [stage, stage_outputs] = *stage_it;
    for (auto it = stage_outputs.begin(); it != stage_outputs.end();) {
      if (it->second.node == node) {
        lost.emplace_back(stage, it->first);
        it = stage_outputs.erase(it);
      } else {
        ++it;
      }
    }
    stage_it = stage_outputs.empty() ? outputs_.erase(stage_it) : ++stage_it;
  }
  return lost;
}

void ShuffleManager::release(int stage) { outputs_.erase(stage); }

}  // namespace evolve::dataflow
