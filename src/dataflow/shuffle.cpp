#include "dataflow/shuffle.hpp"

#include <stdexcept>

namespace evolve::dataflow {

void ShuffleManager::register_output(int stage, int task,
                                     cluster::NodeId node,
                                     util::Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("negative shuffle output");
  auto& stage_outputs = outputs_[stage];
  if (!stage_outputs.emplace(task, MapOutput{node, bytes}).second) {
    throw std::logic_error("duplicate map output registration");
  }
}

bool ShuffleManager::complete(int stage, int count) const {
  auto it = outputs_.find(stage);
  const int have = it == outputs_.end() ? 0 : static_cast<int>(it->second.size());
  return have >= count;
}

std::vector<FetchSource> ShuffleManager::fetch_plan(int stage, int reducer,
                                                    int reducers) const {
  if (reducers <= 0) throw std::invalid_argument("need >= 1 reducer");
  if (reducer < 0 || reducer >= reducers) {
    throw std::invalid_argument("reducer index out of range");
  }
  auto it = outputs_.find(stage);
  if (it == outputs_.end()) return {};
  std::vector<FetchSource> plan;
  plan.reserve(it->second.size());
  for (const auto& [task, output] : it->second) {
    // Even split with the remainder spread over the first reducers.
    const util::Bytes base = output.bytes / reducers;
    const util::Bytes extra = output.bytes % reducers;
    const util::Bytes share = base + (reducer < extra ? 1 : 0);
    if (share > 0) plan.push_back(FetchSource{output.node, share});
  }
  return plan;
}

util::Bytes ShuffleManager::stage_output_bytes(int stage) const {
  auto it = outputs_.find(stage);
  if (it == outputs_.end()) return 0;
  util::Bytes total = 0;
  for (const auto& [task, output] : it->second) total += output.bytes;
  return total;
}

void ShuffleManager::release(int stage) { outputs_.erase(stage); }

}  // namespace evolve::dataflow
