// Logical dataflow plans (Spark-style).
//
// A plan is a tree of operators rooted at a sink: sources feed chains of
// narrow operators (map/filter/flatMap), combined by wide operators
// (groupBy/reduceByKey/join/union) that force shuffles. Operators carry a
// byte-level cost model: `selectivity` (output/input bytes) and
// `cpu_ns_per_byte` (compute intensity), which the engine uses to derive
// task times from partition sizes.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace evolve::dataflow {

enum class OpKind {
  kSource,
  kMap,
  kFilter,
  kFlatMap,
  kGroupBy,
  kReduceByKey,
  kJoin,
  kUnion,
  kSink,
};

const char* to_string(OpKind kind);

/// True for operators that start a new stage (shuffle boundary).
bool is_wide(OpKind kind);

struct Operator {
  int id = -1;
  OpKind kind = OpKind::kMap;
  std::string name;
  std::vector<int> inputs;      // upstream operator ids
  double selectivity = 1.0;     // output bytes / input bytes
  double cpu_ns_per_byte = 0;   // compute cost
  std::string dataset;          // source input / sink output dataset name
  int output_partitions = 0;    // wide ops; 0 = engine default
};

class LogicalPlan {
 public:
  /// Reads a dataset registered in the catalog.
  int add_source(const std::string& dataset);

  int add_map(int input, const std::string& name, double selectivity = 1.0,
              double cpu_ns_per_byte = 0.5);
  int add_filter(int input, const std::string& name, double selectivity,
                 double cpu_ns_per_byte = 0.2);
  int add_flat_map(int input, const std::string& name, double selectivity,
                   double cpu_ns_per_byte = 0.8);

  int add_group_by(int input, const std::string& name, int partitions = 0,
                   double selectivity = 1.0, double cpu_ns_per_byte = 1.0);
  int add_reduce_by_key(int input, const std::string& name,
                        int partitions = 0, double selectivity = 0.1,
                        double cpu_ns_per_byte = 1.0);
  int add_join(int left, int right, const std::string& name,
               int partitions = 0, double selectivity = 1.0,
               double cpu_ns_per_byte = 1.5);
  int add_union(int left, int right, const std::string& name);

  /// Writes the result to a dataset; must be the unique plan root.
  int add_sink(int input, const std::string& dataset);

  const Operator& op(int id) const;
  const std::vector<Operator>& ops() const { return ops_; }
  int size() const { return static_cast<int>(ops_.size()); }

  /// Checks the plan is a tree rooted at exactly one sink, with every
  /// non-sink operator consumed exactly once. Throws on violations.
  void validate() const;

  /// The sink operator id (validates first).
  int sink() const;

  /// Rebuilds a plan from an edge-rewired operator set (ids dense in
  /// [0, n)): topologically sorts, renumbers, and validates. Intended
  /// for optimizer rules that rewire `inputs` edges.
  static LogicalPlan from_operators(std::vector<Operator> ops);

 private:
  int add(Operator op);
  std::vector<Operator> ops_;
};

}  // namespace evolve::dataflow
