// The dataflow execution engine: runs a physical plan on a set of
// executors over the simulated cluster.
//
// Per task: launch overhead -> input (dataset GET or shuffle fetches
// through the shared fabric and device queues) -> compute (bytes x
// stage cost) -> output (shuffle spill to local NVMe, or sink PUT).
// Task placement uses delay scheduling against the input partitions'
// replica locations — the converged platform's data-locality story.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "dataflow/plan.hpp"
#include "dataflow/shuffle.hpp"
#include "dataflow/stage.hpp"
#include "dataflow/task_scheduler.hpp"
#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/dataset.hpp"
#include "storage/io_model.hpp"
#include "trace/tracer.hpp"
#include "util/retry_budget.hpp"

namespace evolve::dataflow {

struct ExecutorSpec {
  cluster::NodeId node = cluster::kInvalidNode;
  int slots = 1;
};

struct DataflowConfig {
  int default_parallelism = 8;     // reducer count when a wide op says 0
  util::TimeNs locality_wait = util::millis(500);  // 0 = no delay sched
  util::TimeNs task_launch_overhead = util::millis(4);
  std::string shuffle_device = "nvme";
  double executor_core_speed = 1.0;  // task compute scale factor

  // -- Straggler injection (models interference/slow nodes) ----------
  double straggler_probability = 0.0;  // per task
  double straggler_slowdown = 6.0;     // compute multiplier when hit
  std::uint64_t straggler_seed = 1;    // deterministic injection

  // -- Speculative execution (Spark-style backup copies) -------------
  bool speculation = false;
  /// A task is speculatable once it has run longer than this multiple
  /// of the median completed-task duration in its stage.
  double speculation_multiplier = 1.5;
  /// Fraction of a stage that must be complete before speculating.
  double speculation_quantile = 0.5;
  /// Health-driven speculation: speculate_on_node() (wired from the
  /// health scorer) launches backups for every copy running on a
  /// flagged node — straggler detection by measured node health instead
  /// of blind stage quantiles. Independent of `speculation`.
  bool health_speculation = false;

  // -- Fault recovery (node crashes) ---------------------------------
  /// When false, any task lost to a node failure fails the whole job.
  bool fault_recovery = true;
  /// Per-task budget of fault-driven re-executions before the job fails.
  int max_task_retries = 4;
  /// Base delay before a lost task is re-enqueued; doubles per retry,
  /// with up to +25% seeded jitter to de-synchronize retry storms.
  util::TimeNs retry_backoff = util::millis(200);
};

struct StageStats {
  int id = -1;
  int tasks = 0;
  int local_tasks = 0;
  util::Bytes input_bytes = 0;
  util::Bytes output_bytes = 0;
  util::TimeNs start_time = -1;
  util::TimeNs finish_time = -1;
};

struct JobStats {
  util::TimeNs duration = 0;
  util::Bytes bytes_read = 0;      // dataset input
  util::Bytes bytes_shuffled = 0;  // cross-task traffic
  util::Bytes bytes_written = 0;   // sink output
  int tasks = 0;
  int local_tasks = 0;
  int stragglers_injected = 0;
  int speculative_launched = 0;
  int speculative_wins = 0;  // backup copy finished first
  bool failed = false;       // aborted (retry budget exhausted)
  int tasks_killed = 0;      // running copies lost to node crashes
  int tasks_reexecuted = 0;  // completed tasks redone (lost map output)
  int map_outputs_lost = 0;  // shuffle outputs dropped by node crashes
  int task_retries = 0;      // fault-driven re-enqueues
  std::vector<StageStats> stages;

  double locality_ratio() const {
    return tasks == 0 ? 0.0
                      : static_cast<double>(local_tasks) /
                            static_cast<double>(tasks);
  }
};

class DataflowEngine {
 public:
  using Callback = std::function<void(const JobStats&)>;

  DataflowEngine(sim::Simulation& sim, const cluster::Cluster& cluster,
                 net::Fabric& fabric, storage::IoSubsystem& io,
                 storage::DatasetCatalog& catalog,
                 DataflowConfig config = {});

  /// Runs `plan` on the given executors; `on_done` receives job stats.
  /// Input datasets must be materialized in the catalog's store. The
  /// engine supports several concurrent jobs (they contend for the
  /// fabric and devices but have separate executors).
  void run(const LogicalPlan& plan, const std::vector<ExecutorSpec>& executors,
           Callback on_done);

  const DataflowConfig& config() const { return config_; }
  metrics::Registry& metrics() { return metrics_; }

  /// Node crash: kills every running task copy on `node` across live
  /// jobs, drops its shuffle map outputs (re-executing the owning map
  /// tasks), and withholds its executor slots. Retries are bounded by
  /// `max_task_retries` per task with exponential backoff; past the
  /// budget the job fails cleanly (stats.failed, `on_done` still runs).
  void handle_node_failure(cluster::NodeId node);
  /// Node recovery: returns the node's executor slots to every live job.
  void handle_node_recovery(cluster::NodeId node);

  // -- Gray-failure hooks (wired from fault/gray + fault/health) ------
  /// Gray slowdown: compute on `node` runs `factor`x slower (>= 1;
  /// 1 clears). Applies to compute phases that start after the call.
  void set_node_slowdown(cluster::NodeId node, double factor);
  /// Health quarantine across every live job: the node's executors stop
  /// receiving new task copies and drain. Running copies finish.
  void set_node_quarantined(cluster::NodeId node, bool quarantined);
  /// Launches a backup copy for every task currently running on `node`
  /// (no-op unless config.health_speculation). Emits `df.speculate`.
  void speculate_on_node(cluster::NodeId node);
  /// Observes every finished compute phase: (node, service time from
  /// copy start to compute end). Feeds the per-node health scorer.
  using TaskObserver = std::function<void(cluster::NodeId, util::TimeNs)>;
  void set_task_observer(TaskObserver observer) {
    task_observer_ = std::move(observer);
  }

  /// Attaches a span tracer: jobs/stages/task copies become kDataflow
  /// spans, shuffle fetches and spills kShuffle spans, and retry waits
  /// kScheduler spans. Null disables (the default, zero overhead).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches a (non-owned, possibly cross-layer shared) retry budget:
  /// fault-driven re-executions then withdraw a token per attempt and
  /// defer — without consuming a retry attempt — while the budget is
  /// empty. Completed tasks deposit. Null (default) disables.
  void set_retry_budget(util::RetryBudget* budget) { retry_budget_ = budget; }

 private:
  struct RunState;

  void start_stage(std::shared_ptr<RunState> run, int stage_id);
  void pump_tasks(std::shared_ptr<RunState> run);
  void execute_copy(std::shared_ptr<RunState> run, TaskId copy, int executor,
                    bool local);
  void release_copy(std::shared_ptr<RunState> run, int executor);
  void task_won(std::shared_ptr<RunState> run, TaskId task);
  void maybe_speculate(std::shared_ptr<RunState> run, int stage_id);
  void finish_stage(std::shared_ptr<RunState> run, int stage_id);
  void retry_task(std::shared_ptr<RunState> run, TaskId task_id);
  void fail_job(std::shared_ptr<RunState> run);
  void prune_runs();

  sim::Simulation& sim_;
  const cluster::Cluster& cluster_;
  net::Fabric& fabric_;
  storage::IoSubsystem& io_;
  storage::DatasetCatalog& catalog_;
  DataflowConfig config_;
  metrics::Registry metrics_;
  trace::Tracer* tracer_ = nullptr;
  /// Gray-failure compute slowdown per node (absent = healthy).
  std::map<cluster::NodeId, double> node_slowdown_;
  TaskObserver task_observer_;
  util::RetryBudget* retry_budget_ = nullptr;  // non-owned, optional
  std::int64_t next_trace_job_ = 1;  // job id stamped on trace spans
  /// Live jobs, for failure fan-out; expired entries pruned lazily.
  std::vector<std::weak_ptr<RunState>> runs_;
};

}  // namespace evolve::dataflow
