#include "dataflow/stage.hpp"

#include <functional>
#include <stdexcept>

namespace evolve::dataflow {

PhysicalPlan PhysicalPlan::compile(const LogicalPlan& plan) {
  plan.validate();
  PhysicalPlan physical;

  // Recursive descent from the sink: narrow operators append to their
  // input's stage; wide operators open a new stage whose parents are the
  // stages of their inputs; sources open leaf stages.
  std::function<int(int)> build = [&](int op_id) -> int {
    const Operator& op = plan.op(op_id);
    switch (op.kind) {
      case OpKind::kSource: {
        StageDef stage;
        stage.id = physical.size();
        stage.operators = {op_id};
        stage.source_dataset = op.dataset;
        physical.stages_.push_back(std::move(stage));
        return physical.size() - 1;
      }
      case OpKind::kMap:
      case OpKind::kFilter:
      case OpKind::kFlatMap:
      case OpKind::kSink: {
        const int stage_id = build(op.inputs.at(0));
        StageDef& stage = physical.stages_[static_cast<std::size_t>(stage_id)];
        stage.operators.push_back(op_id);
        if (op.kind == OpKind::kSink) stage.sink_dataset = op.dataset;
        return stage_id;
      }
      case OpKind::kGroupBy:
      case OpKind::kReduceByKey:
      case OpKind::kJoin:
      case OpKind::kUnion: {
        std::vector<int> parents;
        parents.reserve(op.inputs.size());
        for (int input : op.inputs) parents.push_back(build(input));
        StageDef stage;
        stage.id = physical.size();
        stage.operators = {op_id};
        stage.parents = std::move(parents);
        stage.requested_partitions = op.output_partitions;
        physical.stages_.push_back(std::move(stage));
        return physical.size() - 1;
      }
    }
    throw std::logic_error("unknown operator kind");
  };

  build(plan.sink());

  // Aggregate the per-stage cost model: walk the pipeline accumulating
  // compute per input byte and the cumulative output ratio.
  for (StageDef& stage : physical.stages_) {
    double ratio = 1.0;
    double cpu = 0.0;
    for (int op_id : stage.operators) {
      const Operator& op = plan.op(op_id);
      cpu += ratio * op.cpu_ns_per_byte;
      ratio *= op.selectivity;
    }
    stage.cpu_ns_per_byte = cpu;
    stage.output_ratio = ratio;
  }
  return physical;
}

const StageDef& PhysicalPlan::stage(int id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("bad stage id");
  return stages_[static_cast<std::size_t>(id)];
}

std::vector<std::vector<int>> PhysicalPlan::children() const {
  std::vector<std::vector<int>> out(stages_.size());
  for (const StageDef& stage : stages_) {
    for (int parent : stage.parents) {
      out[static_cast<std::size_t>(parent)].push_back(stage.id);
    }
  }
  return out;
}

}  // namespace evolve::dataflow
