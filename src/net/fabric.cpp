#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace evolve::net {

namespace {
constexpr double kDrainEpsilon = 1e-6;  // bytes
}

Fabric::Fabric(sim::Simulation& sim, const Topology& topology)
    : sim_(sim), topology_(topology), last_settle_(sim.now()) {}

FlowId Fabric::transfer(cluster::NodeId src, cluster::NodeId dst,
                        util::Bytes bytes, FlowCallback on_complete) {
  if (bytes < 0) throw std::invalid_argument("transfer: negative bytes");
  const util::TimeNs latency = topology_.latency(src, dst);
  const FlowId id = next_id_++;
  ++stats_.flows_started;
  if (bytes == 0) {
    ++stats_.flows_completed;
    sim_.after(latency, std::move(on_complete));
    return id;
  }
  settle_progress();
  Flow flow;
  flow.id = id;
  flow.path = topology_.path(src, dst);
  flow.remaining = static_cast<double>(bytes);
  // Completion callback is deferred by the propagation latency so short
  // messages still pay the base RTT contribution.
  const bool remote = !flow.path.empty();
  flow.on_complete = [this, latency, cb = std::move(on_complete), bytes,
                      remote]() mutable {
    stats_.bytes_delivered += bytes;
    if (remote) stats_.bytes_remote += bytes;
    sim_.after(latency, std::move(cb));
  };
  flows_.emplace(id, std::move(flow));
  recompute();
  return id;
}

bool Fabric::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  settle_progress();
  flows_.erase(it);
  recompute();
  return true;
}

double Fabric::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void Fabric::settle_progress() {
  const util::TimeNs now = sim_.now();
  if (now == last_settle_) return;
  const double dt = util::to_seconds(now - last_settle_);
  last_settle_ = now;
  for (auto& [id, flow] : flows_) {
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
  }
}

void Fabric::solve_max_min() {
  ++stats_.rate_recomputations;
  const int link_count = topology_.link_count();
  std::vector<double> capacity(static_cast<std::size_t>(link_count));
  std::vector<int> unfixed(static_cast<std::size_t>(link_count), 0);
  for (int l = 0; l < link_count; ++l) {
    capacity[static_cast<std::size_t>(l)] =
        topology_.link(l).capacity_bytes_per_s;
  }

  std::vector<Flow*> pending;
  pending.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    if (flow.path.empty()) {
      flow.rate = topology_.config().loopback_bytes_per_s;
      continue;
    }
    flow.rate = -1.0;  // unfixed marker
    pending.push_back(&flow);
    for (LinkId l : flow.path) ++unfixed[static_cast<std::size_t>(l)];
  }

  std::size_t remaining = pending.size();
  while (remaining > 0) {
    // Find the bottleneck: the link with the smallest fair share.
    double best_share = std::numeric_limits<double>::infinity();
    for (int l = 0; l < link_count; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (unfixed[idx] == 0) continue;
      const double share = std::max(0.0, capacity[idx]) / unfixed[idx];
      best_share = std::min(best_share, share);
    }
    if (!std::isfinite(best_share)) {
      throw std::logic_error("max-min: unfixed flows but no loaded link");
    }
    // Fix every unfixed flow crossing a link at the bottleneck share.
    bool fixed_any = false;
    for (Flow* flow : pending) {
      if (flow->rate >= 0) continue;
      bool at_bottleneck = false;
      for (LinkId l : flow->path) {
        const auto idx = static_cast<std::size_t>(l);
        const double share = std::max(0.0, capacity[idx]) / unfixed[idx];
        if (share <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      flow->rate = best_share;
      fixed_any = true;
      --remaining;
      for (LinkId l : flow->path) {
        const auto idx = static_cast<std::size_t>(l);
        capacity[idx] -= best_share;
        --unfixed[idx];
      }
    }
    if (!fixed_any) {
      throw std::logic_error("max-min: made no progress");
    }
  }
}

void Fabric::recompute() {
  if (has_pending_event_) {
    sim_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (flows_.empty()) return;
  solve_max_min();
  double earliest_s = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0) {
      throw std::logic_error("flow with zero rate would never complete");
    }
    earliest_s = std::min(earliest_s, flow.remaining / flow.rate);
  }
  const auto delay = static_cast<util::TimeNs>(std::ceil(earliest_s * 1e9));
  pending_event_ = sim_.after(std::max<util::TimeNs>(delay, 0),
                              [this] { on_completion_event(); });
  has_pending_event_ = true;
}

void Fabric::on_completion_event() {
  has_pending_event_ = false;
  settle_progress();
  std::vector<FlowCallback> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kDrainEpsilon) {
      done.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
      ++stats_.flows_completed;
    } else {
      ++it;
    }
  }
  recompute();
  for (auto& cb : done) cb();
}

}  // namespace evolve::net
