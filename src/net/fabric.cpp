#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace evolve::net {

namespace {
constexpr double kDrainEpsilon = 1e-6;  // bytes
}

Fabric::Fabric(sim::Simulation& sim, const Topology& topology,
               FabricConfig config)
    : sim_(sim),
      topology_(topology),
      config_(config),
      last_settle_(sim.now()) {
  link_flow_count_.assign(static_cast<std::size_t>(topology_.link_count()), 0);
  link_capacity_factor_.assign(static_cast<std::size_t>(topology_.link_count()),
                               1.0);
  link_extra_latency_.assign(static_cast<std::size_t>(topology_.link_count()),
                             0);
}

void Fabric::set_link_capacity_factor(LinkId link, double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("link capacity factor must be > 0");
  }
  // Settle progress at the old rates before the capacity change, then
  // trigger a re-solve so in-flight flows pick up the new rates.
  if (config_.use_reference_solver) {
    ref_settle_progress();
    link_capacity_factor_[static_cast<std::size_t>(link)] = factor;
    ref_recompute();
  } else {
    settle_progress();
    link_capacity_factor_[static_cast<std::size_t>(link)] = factor;
    mark_dirty();
  }
}

void Fabric::set_link_extra_latency(LinkId link, util::TimeNs extra) {
  if (extra < 0) throw std::invalid_argument("extra latency must be >= 0");
  link_extra_latency_[static_cast<std::size_t>(link)] = extra;
  any_extra_latency_ = false;
  for (const util::TimeNs e : link_extra_latency_) {
    if (e > 0) any_extra_latency_ = true;
  }
}

FlowId Fabric::transfer(cluster::NodeId src, cluster::NodeId dst,
                        util::Bytes bytes, FlowCallback on_complete) {
  if (bytes < 0) throw std::invalid_argument("transfer: negative bytes");
  util::TimeNs latency = topology_.latency(src, dst);
  if (any_extra_latency_) {
    for (const LinkId l : topology_.path(src, dst)) {
      latency += link_extra_latency_[static_cast<std::size_t>(l)];
    }
  }
  const FlowId id = next_id_++;
  ++stats_.flows_started;
  ++stats_.flows_in_flight;
  if (tracer_) {
    // Span covers the whole flow lifetime including propagation latency;
    // it ends inside the wrapped completion callback or on cancel.
    const trace::SpanId span =
        tracer_->begin(trace::Layer::kNetwork, "net.transfer");
    tracer_->annotate(span, "bytes", std::to_string(bytes));
    tracer_->annotate(span, "src", std::to_string(src));
    tracer_->annotate(span, "dst", std::to_string(dst));
    span_of_.emplace(id, span);
    on_complete = [this, id, cb = std::move(on_complete)]() mutable {
      end_flow_span(id);
      if (cb) cb();
    };
  }
  if (partitions_active_ && !reachable(src, dst)) {
    // The pair is partitioned: the flow parks immediately and makes no
    // progress until a heal/mask change reconnects src → dst.
    ++stats_.flows_parked;
    parked_.emplace(id, ParkedFlow{src, dst, static_cast<double>(bytes), bytes,
                                   latency, std::move(on_complete)});
    return id;
  }
  if (bytes == 0) {
    // Completion is counted when the latency-deferred callback actually
    // fires, so stats never report completions that have not happened yet.
    sim_.after(latency, [this, cb = std::move(on_complete)]() mutable {
      ++stats_.flows_completed;
      --stats_.flows_in_flight;
      cb();
    });
    return id;
  }
  std::vector<LinkId> path = topology_.path(src, dst);
  if (config_.use_reference_solver) {
    return ref_transfer(id, src, dst, std::move(path), bytes, latency,
                        std::move(on_complete));
  }

  settle_progress();
  const int slot = acquire_flow_slot();
  const auto si = static_cast<std::size_t>(slot);
  const int gi = group_for_path(std::move(path));
  Group& group = groups_[static_cast<std::size_t>(gi)];
  flow_id_[si] = id;
  flow_group_[si] = gi;
  flow_bytes_[si] = bytes;
  flow_latency_[si] = latency;
  flow_src_[si] = src;
  flow_dst_[si] = dst;
  flow_finish_drain_[si] = group.drain_total + static_cast<double>(bytes);
  flow_cb_[si] = std::move(on_complete);
  group.members.push(Member{flow_finish_drain_[si], id, slot});
  ++group.size;
  for (LinkId l : group.path) ++link_flow_count_[static_cast<std::size_t>(l)];
  slot_of_.emplace(id, slot);
  ++active_flows_;
  mark_dirty();
  return id;
}

bool Fabric::cancel(FlowId id) {
  auto pit = parked_.find(id);
  if (pit != parked_.end()) {
    // Parked flows never entered (or already left) the solver, so only
    // the in-flight accounting needs unwinding.
    end_flow_span(id);
    parked_.erase(pit);
    ++stats_.flows_cancelled;
    --stats_.flows_in_flight;
    return true;
  }
  if (config_.use_reference_solver) {
    const bool cancelled = ref_cancel(id);
    if (cancelled) end_flow_span(id);
    return cancelled;
  }
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  end_flow_span(id);
  settle_progress();
  const int slot = it->second;
  leave_group(flow_group_[static_cast<std::size_t>(slot)]);
  release_flow_slot(slot);
  slot_of_.erase(it);
  ++stats_.flows_cancelled;
  --stats_.flows_in_flight;
  --active_flows_;
  mark_dirty();
  return true;
}

double Fabric::flow_rate(FlowId id) const {
  if (config_.use_reference_solver) {
    auto it = ref_flows_.find(id);
    return it == ref_flows_.end() ? 0.0 : it->second.rate;
  }
  // Rates may be stale inside a same-timestamp churn batch; flush first.
  const_cast<Fabric*>(this)->flush_if_dirty();
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return 0.0;
  const int gi = flow_group_[static_cast<std::size_t>(it->second)];
  return groups_[static_cast<std::size_t>(gi)].rate;
}

// ---------------------------------------------------------------------------
// Incremental grouped engine
// ---------------------------------------------------------------------------

int Fabric::acquire_flow_slot() {
  if (!free_slots_.empty()) {
    const int s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  flow_id_.push_back(0);
  flow_group_.push_back(-1);
  flow_bytes_.push_back(0);
  flow_latency_.push_back(0);
  flow_src_.push_back(0);
  flow_dst_.push_back(0);
  flow_finish_drain_.push_back(0.0);
  flow_cb_.emplace_back();
  return static_cast<int>(flow_id_.size()) - 1;
}

void Fabric::release_flow_slot(int slot) {
  const auto si = static_cast<std::size_t>(slot);
  flow_id_[si] = 0;
  flow_group_[si] = -1;
  flow_cb_[si] = nullptr;
  free_slots_.push_back(slot);
}

int Fabric::group_for_path(std::vector<LinkId> path) {
  auto it = group_of_path_.find(path);
  if (it != group_of_path_.end()) return it->second;
  int gi;
  if (!free_groups_.empty()) {
    gi = free_groups_.back();
    free_groups_.pop_back();
  } else {
    gi = static_cast<int>(groups_.size());
    groups_.emplace_back();
  }
  Group& group = groups_[static_cast<std::size_t>(gi)];
  group.path = std::move(path);
  group.rate =
      group.path.empty() ? topology_.config().loopback_bytes_per_s : 0.0;
  group.drain_total = 0.0;
  group.size = 0;
  group_of_path_.emplace(group.path, gi);
  return gi;
}

void Fabric::leave_group(int group_index) {
  Group& group = groups_[static_cast<std::size_t>(group_index)];
  for (LinkId l : group.path) --link_flow_count_[static_cast<std::size_t>(l)];
  --group.size;
  if (group.size == 0) {
    group_of_path_.erase(group.path);
    group.path.clear();
    group.members = {};
    group.rate = 0.0;
    group.drain_total = 0.0;
    free_groups_.push_back(group_index);
  }
}

void Fabric::purge_dead_members(Group& group) {
  while (!group.members.empty()) {
    const Member& m = group.members.top();
    if (flow_id_[static_cast<std::size_t>(m.slot)] == m.id) return;
    group.members.pop();  // cancelled flow; its slot moved on
  }
}

void Fabric::settle_progress() {
  const util::TimeNs now = sim_.now();
  if (now == last_settle_) return;
  const double dt = util::to_seconds(now - last_settle_);
  last_settle_ = now;
  for (Group& group : groups_) {
    if (group.size > 0) group.drain_total += group.rate * dt;
  }
}

void Fabric::mark_dirty() {
  dirty_ = true;
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // One recompute per timestamp batch: every same-time arrival/cancel
  // (e.g. a whole shuffle wave) shares this deferred flush.
  sim_.defer([this] {
    flush_scheduled_ = false;
    flush_if_dirty();
  });
}

void Fabric::flush_if_dirty() {
  if (!dirty_) return;
  dirty_ = false;
  settle_progress();
  clear_pending_event();
  if (active_flows_ == 0) return;
  solve_grouped();
  double earliest_s = std::numeric_limits<double>::infinity();
  for (Group& group : groups_) {
    if (group.size == 0) continue;
    if (group.rate <= 0) {
      throw std::logic_error("flow with zero rate would never complete");
    }
    purge_dead_members(group);
    earliest_s = std::min(
        earliest_s,
        (group.members.top().finish_drain - group.drain_total) / group.rate);
  }
  schedule_completion(earliest_s);
}

void Fabric::solve_grouped() {
  ++stats_.rate_recomputations;
  const auto link_count = static_cast<std::size_t>(topology_.link_count());
  cap_scratch_.resize(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    cap_scratch_[l] =
        topology_.link(static_cast<LinkId>(l)).capacity_bytes_per_s *
        link_capacity_factor_[l];
  }
  unfixed_scratch_ = link_flow_count_;

  pending_scratch_.clear();
  std::int64_t remaining = 0;
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    Group& group = groups_[gi];
    if (group.size == 0 || group.path.empty()) continue;
    group.rate = -1.0;  // unfixed marker
    pending_scratch_.push_back(static_cast<int>(gi));
    remaining += group.size;
  }

  while (remaining > 0) {
    // Find the bottleneck: the link with the smallest fair share.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < link_count; ++l) {
      if (unfixed_scratch_[l] == 0) continue;
      const double share =
          std::max(0.0, cap_scratch_[l]) / unfixed_scratch_[l];
      best_share = std::min(best_share, share);
    }
    if (!std::isfinite(best_share)) {
      throw std::logic_error("max-min: unfixed flows but no loaded link");
    }
    // Fix every unfixed group crossing a link at the bottleneck share. The
    // residual capacity is drained with one subtraction per member flow so
    // the arithmetic matches the per-flow reference solver bit for bit.
    bool fixed_any = false;
    for (int gi : pending_scratch_) {
      Group& group = groups_[static_cast<std::size_t>(gi)];
      if (group.rate >= 0) continue;
      bool at_bottleneck = false;
      for (LinkId l : group.path) {
        const auto idx = static_cast<std::size_t>(l);
        const double share =
            std::max(0.0, cap_scratch_[idx]) / unfixed_scratch_[idx];
        if (share <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      group.rate = best_share;
      fixed_any = true;
      remaining -= group.size;
      for (LinkId l : group.path) {
        const auto idx = static_cast<std::size_t>(l);
        for (int k = 0; k < group.size; ++k) cap_scratch_[idx] -= best_share;
        unfixed_scratch_[idx] -= group.size;
      }
    }
    if (!fixed_any) {
      throw std::logic_error("max-min: made no progress");
    }
  }
}

void Fabric::on_completion_event() {
  has_pending_event_ = false;
  settle_progress();
  done_scratch_.clear();
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    Group& group = groups_[gi];
    if (group.size == 0) continue;
    const bool remote = !group.path.empty();
    for (;;) {
      purge_dead_members(group);
      if (group.members.empty()) break;
      const Member m = group.members.top();
      if (m.finish_drain > group.drain_total + kDrainEpsilon) break;
      group.members.pop();
      const auto si = static_cast<std::size_t>(m.slot);
      done_scratch_.push_back(DoneFlow{m.id, flow_bytes_[si], remote,
                                       flow_latency_[si],
                                       std::move(flow_cb_[si])});
      release_flow_slot(m.slot);
      slot_of_.erase(m.id);
      ++stats_.flows_completed;
      --stats_.flows_in_flight;
      --active_flows_;
      leave_group(static_cast<int>(gi));
      if (group.size == 0) break;  // group recycled; its heap was cleared
    }
  }
  // Completion callbacks fire in flow-id order — the determinism contract.
  std::sort(done_scratch_.begin(), done_scratch_.end(),
            [](const DoneFlow& a, const DoneFlow& b) { return a.id < b.id; });
  dirty_ = true;
  flush_if_dirty();
  for (DoneFlow& d : done_scratch_) {
    deliver(d.bytes, d.remote, d.latency, std::move(d.cb));
  }
}

// ---------------------------------------------------------------------------
// Reference (debug) engine — the original from-scratch implementation
// ---------------------------------------------------------------------------

FlowId Fabric::ref_transfer(FlowId id, cluster::NodeId src, cluster::NodeId dst,
                            std::vector<LinkId> path, util::Bytes bytes,
                            util::TimeNs latency, FlowCallback on_complete) {
  ref_settle_progress();
  RefFlow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.path = std::move(path);
  flow.remaining = static_cast<double>(bytes);
  flow.bytes = bytes;
  flow.latency = latency;
  flow.on_complete = std::move(on_complete);
  ref_flows_.emplace(id, std::move(flow));
  ++active_flows_;
  ref_recompute();
  return id;
}

bool Fabric::ref_cancel(FlowId id) {
  auto it = ref_flows_.find(id);
  if (it == ref_flows_.end()) return false;
  ref_settle_progress();
  ref_flows_.erase(it);
  ++stats_.flows_cancelled;
  --stats_.flows_in_flight;
  --active_flows_;
  ref_recompute();
  return true;
}

void Fabric::ref_settle_progress() {
  const util::TimeNs now = sim_.now();
  if (now == last_settle_) return;
  const double dt = util::to_seconds(now - last_settle_);
  last_settle_ = now;
  for (auto& [id, flow] : ref_flows_) {
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
  }
}

void Fabric::ref_solve_max_min() {
  ++stats_.rate_recomputations;
  const int link_count = topology_.link_count();
  std::vector<double> capacity(static_cast<std::size_t>(link_count));
  std::vector<int> unfixed(static_cast<std::size_t>(link_count), 0);
  for (int l = 0; l < link_count; ++l) {
    capacity[static_cast<std::size_t>(l)] =
        topology_.link(l).capacity_bytes_per_s *
        link_capacity_factor_[static_cast<std::size_t>(l)];
  }

  std::vector<RefFlow*> pending;
  pending.reserve(ref_flows_.size());
  for (auto& [id, flow] : ref_flows_) {
    if (flow.path.empty()) {
      flow.rate = topology_.config().loopback_bytes_per_s;
      continue;
    }
    flow.rate = -1.0;  // unfixed marker
    pending.push_back(&flow);
    for (LinkId l : flow.path) ++unfixed[static_cast<std::size_t>(l)];
  }

  std::size_t remaining = pending.size();
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    for (int l = 0; l < link_count; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (unfixed[idx] == 0) continue;
      const double share = std::max(0.0, capacity[idx]) / unfixed[idx];
      best_share = std::min(best_share, share);
    }
    if (!std::isfinite(best_share)) {
      throw std::logic_error("max-min: unfixed flows but no loaded link");
    }
    bool fixed_any = false;
    for (RefFlow* flow : pending) {
      if (flow->rate >= 0) continue;
      bool at_bottleneck = false;
      for (LinkId l : flow->path) {
        const auto idx = static_cast<std::size_t>(l);
        const double share = std::max(0.0, capacity[idx]) / unfixed[idx];
        if (share <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      flow->rate = best_share;
      fixed_any = true;
      --remaining;
      for (LinkId l : flow->path) {
        const auto idx = static_cast<std::size_t>(l);
        capacity[idx] -= best_share;
        --unfixed[idx];
      }
    }
    if (!fixed_any) {
      throw std::logic_error("max-min: made no progress");
    }
  }
}

void Fabric::ref_recompute() {
  clear_pending_event();
  if (ref_flows_.empty()) return;
  ref_solve_max_min();
  double earliest_s = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : ref_flows_) {
    if (flow.rate <= 0) {
      throw std::logic_error("flow with zero rate would never complete");
    }
    earliest_s = std::min(earliest_s, flow.remaining / flow.rate);
  }
  schedule_completion(earliest_s);
}

void Fabric::ref_on_completion_event() {
  has_pending_event_ = false;
  ref_settle_progress();
  struct Done {
    util::Bytes bytes;
    bool remote;
    util::TimeNs latency;
    FlowCallback cb;
  };
  std::vector<Done> done;
  for (auto it = ref_flows_.begin(); it != ref_flows_.end();) {
    if (it->second.remaining <= kDrainEpsilon) {
      RefFlow& flow = it->second;
      done.push_back(Done{flow.bytes, !flow.path.empty(), flow.latency,
                          std::move(flow.on_complete)});
      it = ref_flows_.erase(it);
      ++stats_.flows_completed;
      --stats_.flows_in_flight;
      --active_flows_;
    } else {
      ++it;
    }
  }
  ref_recompute();
  for (Done& d : done) deliver(d.bytes, d.remote, d.latency, std::move(d.cb));
}

// ---------------------------------------------------------------------------
// Network partitions (shared by both engines)
// ---------------------------------------------------------------------------

bool Fabric::reachable(cluster::NodeId src, cluster::NodeId dst) const {
  if (!partitions_active_ || src == dst) return true;
  const int a = host_group_[static_cast<std::size_t>(src)];
  const int b = host_group_[static_cast<std::size_t>(dst)];
  return group_blocked_[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(b)] == 0;
}

void Fabric::set_reachability(std::vector<int> host_group,
                              std::vector<std::vector<char>> blocked) {
  if (static_cast<int>(host_group.size()) != topology_.host_count()) {
    throw std::invalid_argument("set_reachability: host_group size mismatch");
  }
  host_group_ = std::move(host_group);
  group_blocked_ = std::move(blocked);
  partitions_active_ = false;
  for (const auto& row : group_blocked_) {
    for (const char b : row) {
      if (b != 0) partitions_active_ = true;
    }
  }
  apply_reachability();
}

void Fabric::clear_partitions() {
  if (!partitions_active_ && parked_.empty()) return;
  partitions_active_ = false;
  host_group_.clear();
  group_blocked_.clear();
  apply_reachability();
}

void Fabric::apply_reachability() {
  // Settle at the pre-change rates first: parked flows keep exactly the
  // bytes they had drained up to this instant.
  if (config_.use_reference_solver) {
    ref_settle_progress();
    for (auto it = ref_flows_.begin(); it != ref_flows_.end();) {
      RefFlow& flow = it->second;
      if (reachable(flow.src, flow.dst)) {
        ++it;
        continue;
      }
      ++stats_.flows_parked;
      parked_.emplace(flow.id,
                      ParkedFlow{flow.src, flow.dst, flow.remaining, flow.bytes,
                                 flow.latency, std::move(flow.on_complete)});
      it = ref_flows_.erase(it);
      --active_flows_;
    }
  } else {
    settle_progress();
    for (std::size_t si = 0; si < flow_id_.size(); ++si) {
      const FlowId id = flow_id_[si];
      if (id == 0) continue;
      if (reachable(flow_src_[si], flow_dst_[si])) continue;
      const Group& group =
          groups_[static_cast<std::size_t>(flow_group_[si])];
      const double remaining =
          std::max(0.0, flow_finish_drain_[si] - group.drain_total);
      ++stats_.flows_parked;
      parked_.emplace(id, ParkedFlow{flow_src_[si], flow_dst_[si], remaining,
                                     flow_bytes_[si], flow_latency_[si],
                                     std::move(flow_cb_[si])});
      // The heap member left behind purges lazily (slot id mismatch).
      leave_group(flow_group_[si]);
      release_flow_slot(static_cast<int>(si));
      slot_of_.erase(id);
      --active_flows_;
    }
  }
  // Resume every parked flow whose pair is reachable again, in flow-id
  // order (the determinism contract for post-heal re-entry).
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (!reachable(it->second.src, it->second.dst)) {
      ++it;
      continue;
    }
    const FlowId id = it->first;
    ParkedFlow p = std::move(it->second);
    it = parked_.erase(it);
    ++stats_.flows_resumed;
    resume_flow(id, std::move(p));
  }
  if (config_.use_reference_solver) {
    ref_recompute();
  } else {
    mark_dirty();
  }
}

void Fabric::resume_flow(FlowId id, ParkedFlow p) {
  const bool remote = p.src != p.dst;
  if (p.remaining <= kDrainEpsilon) {
    // Everything had drained before the park (or the transfer was
    // zero-byte): only the propagation latency is still owed.
    ++stats_.flows_completed;
    --stats_.flows_in_flight;
    deliver(p.bytes, remote, p.latency, std::move(p.cb));
    return;
  }
  if (config_.use_reference_solver) {
    RefFlow flow;
    flow.id = id;
    flow.src = p.src;
    flow.dst = p.dst;
    flow.path = topology_.path(p.src, p.dst);
    flow.remaining = p.remaining;
    flow.bytes = p.bytes;
    flow.latency = p.latency;
    flow.on_complete = std::move(p.cb);
    ref_flows_.emplace(id, std::move(flow));
    ++active_flows_;
    return;
  }
  const int slot = acquire_flow_slot();
  const auto si = static_cast<std::size_t>(slot);
  const int gi = group_for_path(topology_.path(p.src, p.dst));
  Group& group = groups_[static_cast<std::size_t>(gi)];
  flow_id_[si] = id;
  flow_group_[si] = gi;
  flow_bytes_[si] = p.bytes;
  flow_latency_[si] = p.latency;
  flow_src_[si] = p.src;
  flow_dst_[si] = p.dst;
  flow_finish_drain_[si] = group.drain_total + p.remaining;
  flow_cb_[si] = std::move(p.cb);
  group.members.push(Member{flow_finish_drain_[si], id, slot});
  ++group.size;
  for (LinkId l : group.path) ++link_flow_count_[static_cast<std::size_t>(l)];
  slot_of_.emplace(id, slot);
  ++active_flows_;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

void Fabric::end_flow_span(FlowId id) {
  if (!tracer_) return;
  const auto it = span_of_.find(id);
  if (it == span_of_.end()) return;
  tracer_->end(it->second);
  span_of_.erase(it);
}

void Fabric::deliver(util::Bytes bytes, bool remote, util::TimeNs latency,
                     FlowCallback cb) {
  stats_.bytes_delivered += bytes;
  if (remote) stats_.bytes_remote += bytes;
  sim_.after(latency, std::move(cb));
}

void Fabric::schedule_completion(double earliest_s) {
  const auto delay = static_cast<util::TimeNs>(std::ceil(earliest_s * 1e9));
  pending_event_ = sim_.after(std::max<util::TimeNs>(delay, 0), [this] {
    if (config_.use_reference_solver) {
      ref_on_completion_event();
    } else {
      on_completion_event();
    }
  });
  has_pending_event_ = true;
}

void Fabric::clear_pending_event() {
  if (!has_pending_event_) return;
  sim_.cancel(pending_event_);
  has_pending_event_ = false;
}

}  // namespace evolve::net
