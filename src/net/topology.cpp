#include "net/topology.hpp"

#include <stdexcept>

namespace evolve::net {

// Link layout in links_: for each host h: [2h] = host up, [2h+1] = host
// down; then for each rack r: [2H + 2r] = ToR up (to core), [2H + 2r + 1]
// = ToR down (from core).
Topology::Topology(const cluster::Cluster& cluster, TopologyConfig config)
    : config_(config),
      host_count_(cluster.size()),
      rack_count_(cluster.rack_count()) {
  if (host_count_ == 0) throw std::invalid_argument("empty cluster");
  host_rack_.reserve(static_cast<std::size_t>(host_count_));
  for (const auto& node : cluster.nodes()) host_rack_.push_back(node.rack);

  links_.reserve(static_cast<std::size_t>(2 * host_count_ + 2 * rack_count_));
  for (int h = 0; h < host_count_; ++h) {
    const std::string& name = cluster.node(h).name;
    links_.push_back(Link{name + ":up", config_.host_link_bytes_per_s});
    links_.push_back(Link{name + ":down", config_.host_link_bytes_per_s});
  }
  for (int r = 0; r < rack_count_; ++r) {
    links_.push_back(
        Link{"tor-" + std::to_string(r) + ":up", config_.tor_uplink_bytes_per_s});
    links_.push_back(Link{"tor-" + std::to_string(r) + ":down",
                          config_.tor_uplink_bytes_per_s});
  }
}

LinkId Topology::host_up(cluster::NodeId host) const { return 2 * host; }
LinkId Topology::host_down(cluster::NodeId host) const { return 2 * host + 1; }
LinkId Topology::tor_up(int rack) const {
  return 2 * host_count_ + 2 * rack;
}
LinkId Topology::tor_down(int rack) const {
  return 2 * host_count_ + 2 * rack + 1;
}

std::vector<LinkId> Topology::path(cluster::NodeId src,
                                   cluster::NodeId dst) const {
  if (src < 0 || src >= host_count_ || dst < 0 || dst >= host_count_) {
    throw std::out_of_range("Topology::path: bad host id");
  }
  if (src == dst) return {};
  const int src_rack = host_rack_[static_cast<std::size_t>(src)];
  const int dst_rack = host_rack_[static_cast<std::size_t>(dst)];
  if (src_rack == dst_rack) {
    return {host_up(src), host_down(dst)};
  }
  return {host_up(src), tor_up(src_rack), tor_down(dst_rack), host_down(dst)};
}

int Topology::hops(cluster::NodeId src, cluster::NodeId dst) const {
  if (src == dst) return 0;
  return same_rack(src, dst) ? 1 : 2;
}

bool Topology::same_rack(cluster::NodeId a, cluster::NodeId b) const {
  return host_rack_[static_cast<std::size_t>(a)] ==
         host_rack_[static_cast<std::size_t>(b)];
}

util::TimeNs Topology::latency(cluster::NodeId src, cluster::NodeId dst) const {
  if (src == dst) return config_.base_latency / 2;
  return config_.base_latency +
         static_cast<util::TimeNs>(hops(src, dst) + 1) *
             config_.per_hop_latency;
}

}  // namespace evolve::net
