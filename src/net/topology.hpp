// Datacenter topology: hosts -> rack (ToR) switches -> core switch.
//
// Links are directed (full-duplex modeled as two independent directed
// links). The topology resolves a source/destination host pair into the
// ordered list of directed links a flow occupies, and the end-to-end
// propagation latency.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/types.hpp"

namespace evolve::net {

using LinkId = std::int32_t;

struct Link {
  std::string name;
  double capacity_bytes_per_s = 0;
};

struct TopologyConfig {
  double host_link_bytes_per_s = 1.25e9;  // 10 GbE access links
  double tor_uplink_bytes_per_s = 5e9;    // 40 GbE rack uplinks
  util::TimeNs per_hop_latency = util::micros(2);
  util::TimeNs base_latency = util::micros(10);  // NIC + software stack
  double loopback_bytes_per_s = 16e9;            // intra-node memcpy
};

class Topology {
 public:
  /// Builds host and ToR links for every node in `cluster`.
  Topology(const cluster::Cluster& cluster, TopologyConfig config = {});

  int host_count() const { return host_count_; }
  int rack_count() const { return rack_count_; }
  const TopologyConfig& config() const { return config_; }

  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  int link_count() const { return static_cast<int>(links_.size()); }

  /// Directed links traversed by a flow from host `src` to host `dst`.
  /// Empty for src == dst (loopback).
  std::vector<LinkId> path(cluster::NodeId src, cluster::NodeId dst) const;

  /// End-to-end latency for one message src -> dst.
  util::TimeNs latency(cluster::NodeId src, cluster::NodeId dst) const;

  /// Number of switch hops between two hosts (0 loopback, 1 same rack,
  /// 2 across racks through the core).
  int hops(cluster::NodeId src, cluster::NodeId dst) const;

  /// True when both hosts are in the same rack.
  bool same_rack(cluster::NodeId a, cluster::NodeId b) const;

  /// Rack (failure-domain) index of a host.
  int rack_of(cluster::NodeId host) const {
    return host_rack_[static_cast<std::size_t>(host)];
  }

  /// The two directed NIC links of a host: {egress (up), ingress (down)}.
  /// Lets fault wiring translate "this node's NIC degraded" into link ids.
  std::array<LinkId, 2> host_links(cluster::NodeId host) const {
    return {host_up(host), host_down(host)};
  }

 private:
  LinkId host_up(cluster::NodeId host) const;
  LinkId host_down(cluster::NodeId host) const;
  LinkId tor_up(int rack) const;
  LinkId tor_down(int rack) const;

  TopologyConfig config_;
  int host_count_ = 0;
  int rack_count_ = 0;
  std::vector<int> host_rack_;
  std::vector<Link> links_;
};

}  // namespace evolve::net
