// Flow-level network simulation with progressive max-min fair sharing.
//
// A Flow occupies every directed link on its path. Whenever the set of
// active flows changes, the fabric re-solves max-min fair rates
// (water-filling over bottleneck links) and reschedules the earliest flow
// completion. This reproduces the bandwidth contention behaviour that
// drives shuffle, collective, and storage-transfer times in EVOLVE.
//
// Scale design (see DESIGN.md "Simulation kernel performance"):
//  * Flows are grouped by path signature — all flows sharing a path have
//    identical max-min rates, so the water-filling solver iterates groups,
//    not flows: O(groups · links) per solve instead of O(flows · links).
//  * Progress settling is lazy: each group keeps a cumulative
//    "bytes drained per member flow" counter; a flow records the counter
//    value when it joins and completes when the counter passes
//    join_value + bytes. Churn events therefore touch O(groups) state,
//    never O(flows).
//  * Same-timestamp churn (a shuffle wave, a collective fan-out) is
//    batched: transfer()/cancel() only mark the fabric dirty and a
//    deferred same-time event runs a single recompute for the whole wave.
//  * Flow state lives in flat structure-of-arrays slot columns with a
//    free list (no std::map node churn, and the solver/completion scans
//    touch only the columns they need); solver scratch buffers are
//    reused across recomputes. Completion callbacks are util::SmallFn,
//    so starting and finishing a flow allocates nothing for the common
//    capture sizes.
//
// Determinism invariants (preserved from the original implementation):
// completion callbacks within one event fire in flow-id order, and rates
// follow the exact same water-filling arithmetic as the reference solver,
// so simulation outputs are unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/small_fn.hpp"
#include "util/types.hpp"

namespace evolve::net {

using FlowId = std::int64_t;
using FlowCallback = util::SmallFn;

struct FlowStats {
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  std::int64_t flows_cancelled = 0;
  /// Flows accepted but not yet completed or cancelled (includes zero-byte
  /// transfers still waiting out their propagation latency, and flows
  /// parked behind a network partition).
  std::int64_t flows_in_flight = 0;
  util::Bytes bytes_delivered = 0;
  /// Bytes that actually crossed network links (excludes loopback).
  util::Bytes bytes_remote = 0;
  std::int64_t rate_recomputations = 0;
  /// Park events: a flow stalled because its (src, dst) pair became (or
  /// was) unreachable under the active partition set. Cumulative.
  std::int64_t flows_parked = 0;
  /// Parked flows that resumed after a heal/reachability change.
  std::int64_t flows_resumed = 0;
};

struct FabricConfig {
  /// Debug/verification switch: run the original from-scratch per-flow
  /// solver with eager settling instead of the incremental grouped solver.
  /// The churn-equivalence tests and bench_f9_churn drive both paths over
  /// identical schedules.
  bool use_reference_solver = false;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, const Topology& topology,
         FabricConfig config = {});

  /// Starts a transfer of `bytes` from host `src` to host `dst`;
  /// `on_complete` fires (as a simulation event) when the last byte lands.
  /// Zero-byte transfers complete after just the propagation latency.
  FlowId transfer(cluster::NodeId src, cluster::NodeId dst, util::Bytes bytes,
                  FlowCallback on_complete);

  /// Cancels an in-flight transfer; its callback never fires.
  /// Returns false if the flow already completed.
  bool cancel(FlowId id);

  /// Current max-min rate of a flow in bytes/s (0 if unknown/finished).
  double flow_rate(FlowId id) const;

  int active_flows() const { return active_flows_; }
  const FlowStats& stats() const { return stats_; }
  const Topology& topology() const { return topology_; }

  /// Attaches a span tracer; every transfer becomes a kNetwork span
  /// parented by the caller's current trace context. Null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // -- Gray-failure link degradation ----------------------------------
  /// Scales a link's effective capacity: base * factor. Callers fold
  /// packet loss into the factor (bw_factor * (1 - loss)). Applied
  /// identically by the grouped and reference solvers; in-flight flows
  /// re-solve from the call's timestamp. Must be > 0 (a zero-rate flow
  /// would never complete). Factor 1.0 is exact (x * 1.0 == x), so an
  /// undegraded fabric computes bit-identical rates.
  void set_link_capacity_factor(LinkId link, double factor);
  /// Extra one-way propagation latency added to every *new* transfer
  /// whose path crosses the link (in-flight flows keep their latency).
  void set_link_extra_latency(LinkId link, util::TimeNs extra);
  double link_capacity_factor(LinkId link) const {
    return link_capacity_factor_[static_cast<std::size_t>(link)];
  }
  util::TimeNs link_extra_latency(LinkId link) const {
    return link_extra_latency_[static_cast<std::size_t>(link)];
  }

  // -- Network partitions ---------------------------------------------
  /// Installs a reachability mask: `host_group[h]` assigns every host to
  /// an equivalence class and `blocked[a][b]` marks class a → class b as
  /// unreachable (directional, so asymmetric partitions are expressible).
  /// In-flight flows whose (src, dst) pair becomes blocked are *parked* —
  /// they stop draining, leave the solver, and keep their remaining
  /// bytes — and resume when a later mask (or clear_partitions) unblocks
  /// the pair. New transfers on blocked pairs park immediately. Loopback
  /// (src == dst) is never blocked. Driven by fault::PartitionInjector.
  void set_reachability(std::vector<int> host_group,
                        std::vector<std::vector<char>> blocked);
  /// Heals all partitions; every parked flow resumes.
  void clear_partitions();
  /// True when src can currently reach dst.
  bool reachable(cluster::NodeId src, cluster::NodeId dst) const;
  /// Flows currently parked behind a partition.
  int parked_flows() const { return static_cast<int>(parked_.size()); }

 private:
  // ---- incremental grouped engine ----

  struct Member {
    double finish_drain;
    FlowId id;
    int slot;
  };
  struct MemberLater {
    bool operator()(const Member& a, const Member& b) const {
      if (a.finish_drain != b.finish_drain) {
        return a.finish_drain > b.finish_drain;
      }
      return a.id > b.id;  // deterministic pop order for identical finishes
    }
  };
  struct Group {
    std::vector<LinkId> path;  // empty = loopback
    double rate = 0;           // bytes/s per member flow
    double drain_total = 0;    // cumulative bytes drained per member flow
    int size = 0;              // live member count
    // Min-heap of members by finish_drain; cancelled members are skipped
    // lazily (slot id mismatch).
    std::priority_queue<Member, std::vector<Member>, MemberLater> members;
  };

  /// Data captured for a completed flow before its slot is recycled;
  /// callbacks fire in flow-id order after the post-completion recompute.
  struct DoneFlow {
    FlowId id;
    util::Bytes bytes;
    bool remote;
    util::TimeNs latency;
    FlowCallback cb;
  };

  int group_for_path(std::vector<LinkId> path);
  int acquire_flow_slot();
  void release_flow_slot(int slot);
  void leave_group(int group_index);
  /// Drops cancelled members off a group's heap top.
  void purge_dead_members(Group& group);

  /// Folds elapsed time into every group's drain counter — O(groups).
  void settle_progress();

  /// Marks rates stale and schedules a single same-time recompute event
  /// for the current timestamp batch.
  void mark_dirty();

  /// Runs the solver and reschedules the next completion if dirty.
  void flush_if_dirty();

  /// Completion event body: completes all flows that have drained.
  void on_completion_event();

  /// Grouped water-filling: identical arithmetic to the reference solver,
  /// but iterates path groups instead of flows.
  void solve_grouped();

  // ---- reference (debug) engine: the original per-flow implementation ----

  struct RefFlow {
    FlowId id = 0;
    cluster::NodeId src = 0;
    cluster::NodeId dst = 0;
    std::vector<LinkId> path;
    double remaining = 0;
    double rate = 0;
    util::Bytes bytes = 0;
    util::TimeNs latency = 0;
    FlowCallback on_complete;
  };

  FlowId ref_transfer(FlowId id, cluster::NodeId src, cluster::NodeId dst,
                      std::vector<LinkId> path, util::Bytes bytes,
                      util::TimeNs latency, FlowCallback on_complete);
  bool ref_cancel(FlowId id);
  void ref_settle_progress();
  void ref_recompute();
  void ref_solve_max_min();
  void ref_on_completion_event();

  // ---- shared ----

  /// A flow stalled behind a partition: it holds its remaining bytes and
  /// callback while unreachable and re-enters the engine on heal.
  struct ParkedFlow {
    cluster::NodeId src = 0;
    cluster::NodeId dst = 0;
    double remaining = 0;   // bytes left to drain once resumed
    util::Bytes bytes = 0;  // original transfer size (delivery accounting)
    util::TimeNs latency = 0;
    FlowCallback cb;
  };

  /// Re-evaluates every in-flight and parked flow against the current
  /// mask: blocked live flows park, unblocked parked flows resume.
  void apply_reachability();
  /// Re-enters a previously parked flow into the active engine (or
  /// delivers it immediately when its remaining bytes already drained).
  void resume_flow(FlowId id, ParkedFlow p);

  void deliver(util::Bytes bytes, bool remote, util::TimeNs latency,
               FlowCallback cb);
  void schedule_completion(double earliest_s);
  void clear_pending_event();
  /// Closes a cancelled/completed flow's span (no-op when untraced).
  void end_flow_span(FlowId id);

  sim::Simulation& sim_;
  const Topology& topology_;
  FabricConfig config_;

  FlowId next_id_ = 1;
  int active_flows_ = 0;
  util::TimeNs last_settle_ = 0;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  FlowStats stats_;

  // Incremental-engine state. Per-flow slot fields are structure-of-arrays
  // columns indexed by slot: the completion scan reads ids and drains, the
  // rate query reads groups, and only a finishing flow touches its
  // callback — each scan stays in the one dense column it needs.
  std::vector<FlowId> flow_id_;       // 0 marks a free slot
  std::vector<int> flow_group_;
  std::vector<util::Bytes> flow_bytes_;
  std::vector<util::TimeNs> flow_latency_;
  std::vector<cluster::NodeId> flow_src_;
  std::vector<cluster::NodeId> flow_dst_;
  // Group drain_total at which the flow is done.
  std::vector<double> flow_finish_drain_;
  std::vector<FlowCallback> flow_cb_;
  std::vector<int> free_slots_;
  std::unordered_map<FlowId, int> slot_of_;
  std::vector<Group> groups_;
  std::vector<int> free_groups_;
  std::map<std::vector<LinkId>, int> group_of_path_;
  /// Live (non-loopback) flows crossing each link; kept incrementally so
  /// the solver never iterates flows to build link state.
  std::vector<int> link_flow_count_;
  // Gray-failure degradation state (1.0 / 0 = healthy).
  std::vector<double> link_capacity_factor_;
  std::vector<util::TimeNs> link_extra_latency_;
  bool any_extra_latency_ = false;
  bool dirty_ = false;
  bool flush_scheduled_ = false;
  // Reusable solver scratch (avoids per-recompute allocation).
  std::vector<double> cap_scratch_;
  std::vector<int> unfixed_scratch_;
  std::vector<int> pending_scratch_;
  std::vector<DoneFlow> done_scratch_;

  // Reference-engine state. std::map keeps iteration order deterministic
  // (flow-id order), which makes completion-callback ordering reproducible.
  std::map<FlowId, RefFlow> ref_flows_;

  // Partition state (shared by both engines). parked_ is flow-id ordered
  // so resume order after a heal is deterministic.
  std::vector<int> host_group_;
  std::vector<std::vector<char>> group_blocked_;
  bool partitions_active_ = false;
  std::map<FlowId, ParkedFlow> parked_;

  // Tracing (observational only; empty when no tracer is attached).
  trace::Tracer* tracer_ = nullptr;
  std::unordered_map<FlowId, trace::SpanId> span_of_;
};

}  // namespace evolve::net
