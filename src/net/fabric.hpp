// Flow-level network simulation with progressive max-min fair sharing.
//
// A Flow occupies every directed link on its path. Whenever the set of
// active flows changes, the fabric re-solves max-min fair rates
// (water-filling over bottleneck links) and reschedules the earliest flow
// completion. This reproduces the bandwidth contention behaviour that
// drives shuffle, collective, and storage-transfer times in EVOLVE.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::net {

using FlowId = std::int64_t;
using FlowCallback = std::function<void()>;

struct FlowStats {
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  util::Bytes bytes_delivered = 0;
  /// Bytes that actually crossed network links (excludes loopback).
  util::Bytes bytes_remote = 0;
  std::int64_t rate_recomputations = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, const Topology& topology);

  /// Starts a transfer of `bytes` from host `src` to host `dst`;
  /// `on_complete` fires (as a simulation event) when the last byte lands.
  /// Zero-byte transfers complete after just the propagation latency.
  FlowId transfer(cluster::NodeId src, cluster::NodeId dst, util::Bytes bytes,
                  FlowCallback on_complete);

  /// Cancels an in-flight transfer; its callback never fires.
  /// Returns false if the flow already completed.
  bool cancel(FlowId id);

  /// Current max-min rate of a flow in bytes/s (0 if unknown/finished).
  double flow_rate(FlowId id) const;

  int active_flows() const { return static_cast<int>(flows_.size()); }
  const FlowStats& stats() const { return stats_; }
  const Topology& topology() const { return topology_; }

 private:
  struct Flow {
    FlowId id = 0;
    std::vector<LinkId> path;   // empty = loopback
    double remaining = 0;       // bytes still to deliver
    double rate = 0;            // bytes/s, from the last max-min solve
    FlowCallback on_complete;
  };

  /// Folds elapsed time into every flow's `remaining`.
  void settle_progress();

  /// Recomputes max-min rates and schedules the next completion event.
  void recompute();

  /// Completion event body: completes all flows that have drained.
  void on_completion_event();

  void solve_max_min();

  sim::Simulation& sim_;
  const Topology& topology_;
  // std::map keeps iteration order deterministic (flow-id order), which
  // makes completion-callback ordering reproducible across platforms.
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  util::TimeNs last_settle_ = 0;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  FlowStats stats_;
};

}  // namespace evolve::net
