// Notebook-style session: synchronous convenience wrappers over the
// platform (the Zeppelin-notebook front end of the EVOLVE testbed,
// reduced to a programmatic API).
//
// Each call drives the simulation until its operation completes, so
// examples read top-to-bottom like a notebook.
#pragma once

#include <string>

#include "core/platform.hpp"

namespace evolve::core {

class Session {
 public:
  explicit Session(Platform& platform) : platform_(platform) {}

  /// Defines and stages a dataset instantly (pre-loaded input data).
  void create_dataset(const std::string& name, int partitions,
                      util::Bytes total_bytes, bool warm_cache = false);

  /// Ingests a dataset through real PUTs from `client` (takes simulated
  /// time). Returns the ingest wall time.
  util::TimeNs ingest_dataset(const std::string& name, int partitions,
                              util::Bytes total_bytes,
                              cluster::NodeId client = 0);

  /// Runs a dataflow plan to completion and returns its stats.
  dataflow::JobStats run_dataflow(const dataflow::LogicalPlan& plan,
                                  int executors = 4, int slots = 4);

  /// Runs an MPI program to completion and returns its stats.
  hpc::MpiRunStats run_hpc(const hpc::MpiProgram& program, int ranks);

  /// Runs a workflow to completion.
  workflow::WorkflowResult run_workflow(const workflow::Workflow& wf);

  /// Offloads CPU work to an accelerator and waits for it.
  util::TimeNs run_accel(const std::string& kernel, util::TimeNs cpu_time);

  Platform& platform() { return platform_; }
  util::TimeNs now() const;

 private:
  Platform& platform_;
};

}  // namespace evolve::core
