// Cluster monitoring plane: periodic sampling of platform gauges into
// time series (the Prometheus/Grafana plane of the EVOLVE testbed).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "sim/simulation.hpp"

namespace evolve::core {

/// One scrape target: a named gauge read on every sampling tick.
struct Probe {
  std::string name;
  std::function<double()> read;
};

class ClusterMonitor {
 public:
  ClusterMonitor(sim::Simulation& sim, util::TimeNs interval);

  /// Registers a probe; sampled on every tick once started.
  void add_probe(std::string name, std::function<double()> read);

  /// Starts periodic sampling. stop() is required for the simulation to
  /// drain at the end of an experiment.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Sampled series, one per probe name.
  const metrics::Registry& registry() const { return registry_; }
  metrics::Registry& registry() { return registry_; }

  /// Takes one sample of every probe immediately.
  void sample_now();

  std::int64_t samples_taken() const { return samples_; }

 private:
  sim::Simulation& sim_;
  util::TimeNs interval_;
  std::vector<Probe> probes_;
  metrics::Registry registry_;
  bool running_ = false;
  std::int64_t samples_ = 0;
};

}  // namespace evolve::core
