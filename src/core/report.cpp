#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace evolve::core {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("table needs columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("row width does not match columns");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_string(); }

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

MetricsReport::MetricsReport(std::string bench_name)
    : name_(std::move(bench_name)) {
  if (name_.empty()) throw std::invalid_argument("bench name required");
}

void MetricsReport::set(const std::string& metric, double value) {
  // JSON has no NaN/Infinity; %g would print them verbatim and corrupt
  // the whole document. Emit null so the file stays parseable and the
  // missing value is visible downstream.
  if (!std::isfinite(value)) {
    metrics_.emplace_back(metric, "null");
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  metrics_.emplace_back(metric, buffer);
}

void MetricsReport::set(const std::string& metric, std::int64_t value) {
  metrics_.emplace_back(metric, std::to_string(value));
}

std::string MetricsReport::to_json() const {
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << json_escape(name_) << "\"";
  for (const auto& [metric, value] : metrics_) {
    out << ",\n  \"" << json_escape(metric) << "\": " << value;
  }
  out << "\n}\n";
  return out.str();
}

std::string MetricsReport::write() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << to_json();
  return path;
}

bool json_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  return false;
}

}  // namespace evolve::core
