#include "core/report.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace evolve::core {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("table needs columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("row width does not match columns");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_string(); }

}  // namespace evolve::core
