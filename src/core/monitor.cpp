#include "core/monitor.hpp"

#include <stdexcept>

namespace evolve::core {

ClusterMonitor::ClusterMonitor(sim::Simulation& sim, util::TimeNs interval)
    : sim_(sim), interval_(interval) {
  if (interval <= 0) {
    throw std::invalid_argument("monitor interval must be > 0");
  }
}

void ClusterMonitor::add_probe(std::string name,
                               std::function<double()> read) {
  if (!read) throw std::invalid_argument("probe needs a reader");
  probes_.push_back(Probe{std::move(name), std::move(read)});
}

void ClusterMonitor::sample_now() {
  const util::TimeNs now = sim_.now();
  for (const Probe& probe : probes_) {
    registry_.sample(probe.name, now, probe.read());
  }
  ++samples_;
}

void ClusterMonitor::start() {
  if (running_) return;
  running_ = true;
  struct Tick {
    ClusterMonitor* self;
    void operator()() const {
      if (!self->running_) return;
      self->sample_now();
      self->sim_.after(self->interval_, Tick{self});
    }
  };
  sim_.after(interval_, Tick{this});
}

void ClusterMonitor::stop() { running_ = false; }

}  // namespace evolve::core
