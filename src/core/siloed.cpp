#include "core/siloed.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace evolve::core {

const char* to_string(Silo silo) {
  switch (silo) {
    case Silo::kCloud: return "cloud";
    case Silo::kBigData: return "bigdata";
    case Silo::kHpc: return "hpc";
  }
  return "?";
}

SiloedPlatform::SiloedPlatform(sim::Simulation& sim, PlatformConfig config)
    : sim_(sim),
      config_(config),
      cluster_(cluster::make_testbed(config.compute_nodes,
                                     config.storage_nodes, config.accel_nodes,
                                     config.racks)) {
  if (config.compute_nodes < 3 || config.storage_nodes < 2) {
    throw std::invalid_argument(
        "siloed platform needs >= 3 compute and >= 2 storage nodes");
  }
  topology_ = std::make_unique<net::Topology>(cluster_, config_.topology);
  fabric_ = std::make_unique<net::Fabric>(sim_, *topology_);
  io_ = std::make_unique<storage::IoSubsystem>(sim_, cluster_);

  // Partition the hardware.
  const auto compute = cluster_.nodes_with_label("role=compute");
  const auto storage_nodes = cluster_.nodes_with_label("role=storage");
  const auto accel_nodes = cluster_.nodes_with_label("role=accel");
  const int third = static_cast<int>(compute.size()) / 3;
  for (int i = 0; i < static_cast<int>(compute.size()); ++i) {
    const auto node = compute[static_cast<std::size_t>(i)];
    if (i < third) {
      silo_nodes_[Silo::kCloud].push_back(node);
    } else if (i < 2 * third) {
      silo_nodes_[Silo::kBigData].push_back(node);
    } else {
      silo_nodes_[Silo::kHpc].push_back(node);
    }
  }
  std::vector<cluster::NodeId> bigdata_servers, hpc_servers;
  for (int i = 0; i < static_cast<int>(storage_nodes.size()); ++i) {
    const auto node = storage_nodes[static_cast<std::size_t>(i)];
    if (i < static_cast<int>(storage_nodes.size()) / 2 ||
        storage_nodes.size() == 1) {
      bigdata_servers.push_back(node);
    } else {
      hpc_servers.push_back(node);
    }
  }
  if (bigdata_servers.empty() || hpc_servers.empty()) {
    throw std::invalid_argument("need storage nodes for both silos");
  }
  for (auto node : accel_nodes) silo_nodes_[Silo::kHpc].push_back(node);

  bigdata_store_ = std::make_unique<storage::ObjectStore>(
      sim_, cluster_, *fabric_, *io_, bigdata_servers, config_.store);
  hpc_store_ = std::make_unique<storage::ObjectStore>(
      sim_, cluster_, *fabric_, *io_, hpc_servers, config_.store);
  bigdata_catalog_ = std::make_unique<storage::DatasetCatalog>(*bigdata_store_);
  hpc_catalog_ = std::make_unique<storage::DatasetCatalog>(*hpc_store_);

  for (Silo silo : {Silo::kCloud, Silo::kBigData, Silo::kHpc}) {
    orch::OrchestratorConfig oc = config_.orchestrator;
    oc.nodes = silo_nodes_[silo];
    orchestrators_[silo] = std::make_unique<orch::Orchestrator>(
        sim_, cluster_, orch::SchedulingPolicy::spreading(cluster_), oc);
  }
  dataflow_ = std::make_unique<dataflow::DataflowEngine>(
      sim_, cluster_, *fabric_, *io_, *bigdata_catalog_, config_.dataflow);
  accel_ = std::make_unique<accel::AccelPool>(
      sim_, cluster_, accel::KernelRegistry::standard(),
      config_.accel_device);
  workflow_engine_ = std::make_unique<workflow::WorkflowEngine>(sim_, *this);
}

const std::vector<cluster::NodeId>& SiloedPlatform::silo_nodes(
    Silo silo) const {
  return silo_nodes_.at(silo);
}

orch::Orchestrator& SiloedPlatform::orchestrator(Silo silo) {
  return *orchestrators_.at(silo);
}

void SiloedPlatform::run_workflow(
    const workflow::Workflow& wf,
    std::function<void(const workflow::WorkflowResult&)> cb) {
  workflow_engine_->run(wf, std::move(cb));
}

storage::DatasetCatalog* SiloedPlatform::find_catalog_with(
    const std::string& dataset) {
  if (bigdata_catalog_->defined(dataset) &&
      bigdata_catalog_->materialized(dataset)) {
    return bigdata_catalog_.get();
  }
  if (hpc_catalog_->defined(dataset) && hpc_catalog_->materialized(dataset)) {
    return hpc_catalog_.get();
  }
  return nullptr;
}

void SiloedPlatform::stage_dataset(const std::string& dataset,
                                   storage::DatasetCatalog& target,
                                   std::function<void()> on_done) {
  if (target.defined(dataset) && target.materialized(dataset)) {
    sim_.defer(std::move(on_done));
    return;
  }
  storage::DatasetCatalog* source = find_catalog_with(dataset);
  if (source == nullptr) {
    throw std::invalid_argument("dataset not found in any silo: " + dataset);
  }
  const storage::DatasetSpec spec = source->spec(dataset);
  target.define(spec);
  target.store().create_bucket(dataset);
  ++staging_ops_;
  staged_bytes_ += spec.total_bytes;

  // Gateway: the first node of the target store's server set; each
  // partition flows source server -> gateway -> target server.
  const cluster::NodeId gateway = target.store().servers().front();
  auto remaining = std::make_shared<int>(spec.partitions);
  auto done = std::make_shared<std::function<void()>>(std::move(on_done));
  auto* target_ptr = &target;  // safe: catalogs outlive the platform run
  for (int i = 0; i < spec.partitions; ++i) {
    const auto key = storage::partition_key(spec, i);
    source->store().get(
        gateway, key,
        [key, gateway, remaining, done,
         target_ptr](const storage::GetResult& result) {
          if (!result.found) {
            throw std::logic_error("staged partition vanished: " + key.full());
          }
          target_ptr->store().put(gateway, key, result.size,
                                  [remaining, done] {
                                    if (--*remaining == 0) (*done)();
                                  });
        });
  }
}

void SiloedPlatform::stage_all(std::vector<std::string> datasets,
                               storage::DatasetCatalog& target,
                               std::function<void()> on_done) {
  if (datasets.empty()) {
    sim_.defer(std::move(on_done));
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(datasets.size()));
  auto done = std::make_shared<std::function<void()>>(std::move(on_done));
  for (const std::string& dataset : datasets) {
    stage_dataset(dataset, target, [remaining, done] {
      if (--*remaining == 0) (*done)();
    });
  }
}

void SiloedPlatform::run_dataflow_step(const workflow::Step& step,
                                       std::function<void(bool)> on_done) {
  // Validate the plan synchronously so malformed plans fail the step
  // here (inside run_step's try) rather than inside a later event.
  (void)dataflow::PhysicalPlan::compile(step.plan);
  // Inputs must live in the big-data silo store.
  std::vector<std::string> inputs = step.input_datasets;
  for (const dataflow::Operator& op : step.plan.ops()) {
    if (op.kind == dataflow::OpKind::kSource) inputs.push_back(op.dataset);
  }
  auto plan = step.plan;
  const int executors = step.dataflow_executors;
  const int slots = step.dataflow_slots;
  stage_all(inputs, *bigdata_catalog_, [this, plan, executors, slots,
                                        on_done] {
    // Acquire executor pods inside the big-data silo only.
    struct Acquire {
      std::vector<orch::PodId> pods;
      std::vector<dataflow::ExecutorSpec> specs;
      int remaining;
    };
    auto acquire = std::make_shared<Acquire>();
    acquire->remaining = executors;
    auto* orch_bd = orchestrators_.at(Silo::kBigData).get();
    for (int i = 0; i < executors; ++i) {
      orch::PodSpec spec;
      spec.name = "silo-exec-" + std::to_string(i);
      spec.tenant = "dataflow";
      spec.request = cluster::cpu_mem(config_.executor_millicores,
                                      config_.executor_memory);
      const orch::PodId id = orch_bd->submit(
          spec, -1,
          [this, acquire, slots, plan, on_done, orch_bd](
              orch::PodId, cluster::NodeId node) {
            acquire->specs.push_back(dataflow::ExecutorSpec{node, slots});
            if (--acquire->remaining > 0) return;
            dataflow_->run(plan, acquire->specs,
                           [acquire, on_done, orch_bd](
                               const dataflow::JobStats&) {
                             for (orch::PodId pod_id : acquire->pods) {
                               orch_bd->finish(pod_id);
                             }
                             on_done(true);
                           });
          });
      if (id == orch::kInvalidPod) {
        for (orch::PodId pod_id : acquire->pods) orch_bd->cancel(pod_id);
        on_done(false);
        return;
      }
      acquire->pods.push_back(id);
    }
  });
}

void SiloedPlatform::run_hpc_step(const workflow::Step& step,
                                  std::function<void(bool)> on_done) {
  auto program = step.mpi;
  const int ranks = step.hpc_ranks;
  stage_all(step.input_datasets, *hpc_catalog_, [this, program, ranks,
                                                 on_done] {
    struct Gang {
      std::vector<orch::PodId> pods;
      std::vector<cluster::NodeId> rank_nodes;
      std::shared_ptr<hpc::Communicator> comm;
      int remaining;
    };
    auto gang = std::make_shared<Gang>();
    gang->remaining = ranks;
    gang->rank_nodes.resize(static_cast<std::size_t>(ranks),
                            cluster::kInvalidNode);
    auto* orch_hpc = orchestrators_.at(Silo::kHpc).get();
    std::vector<orch::PodSpec> specs;
    for (int r = 0; r < ranks; ++r) {
      orch::PodSpec spec;
      spec.name = "silo-rank-" + std::to_string(r);
      spec.tenant = "hpc";
      spec.request =
          cluster::cpu_mem(config_.rank_millicores, config_.rank_memory);
      specs.push_back(std::move(spec));
    }
    auto on_start = [this, gang, program, on_done, orch_hpc](
                        orch::PodId id, cluster::NodeId node) {
      const auto it = std::find(gang->pods.begin(), gang->pods.end(), id);
      const auto rank = static_cast<std::size_t>(it - gang->pods.begin());
      gang->rank_nodes[rank] = node;
      if (--gang->remaining > 0) return;
      gang->comm = std::make_shared<hpc::Communicator>(
          sim_, *fabric_, gang->rank_nodes, config_.comm);
      hpc::run_mpi_program(sim_, *gang->comm, program,
                           [gang, on_done, orch_hpc](const hpc::MpiRunStats&) {
                             for (orch::PodId pod_id : gang->pods) {
                               orch_hpc->finish(pod_id);
                             }
                             on_done(true);
                           });
    };
    gang->pods = orch_hpc->submit_gang(specs, -1, on_start);
    if (gang->pods.empty()) on_done(false);
  });
}

void SiloedPlatform::run_step(const workflow::Step& step,
                              std::function<void(bool)> on_done) {
  using workflow::StepKind;
  try {
    switch (step.kind) {
      case StepKind::kContainer: {
        const orch::PodId id = orchestrators_.at(Silo::kCloud)->submit(
            step.pod, step.pod_duration, {},
            [on_done](orch::PodId, orch::PodPhase phase) {
              on_done(phase == orch::PodPhase::kSucceeded);
            });
        if (id == orch::kInvalidPod) on_done(false);
        return;
      }
      case StepKind::kDataflow:
        run_dataflow_step(step, std::move(on_done));
        return;
      case StepKind::kHpc:
        run_hpc_step(step, std::move(on_done));
        return;
      case StepKind::kAccel:
        accel_->offload(step.kernel, step.accel_cpu_time,
                        cluster::kInvalidNode, [on_done] { on_done(true); });
        return;
      case StepKind::kCustom:
        if (!step.custom) throw std::invalid_argument("custom step w/o body");
        step.custom(on_done);
        return;
    }
    throw std::logic_error("unknown step kind");
  } catch (const std::exception& e) {
    EVOLVE_LOG(kWarn, "siloed") << "step '" << step.name
                                << "' failed: " << e.what();
    on_done(false);
  }
}

}  // namespace evolve::core
