// Mixed-workload scheduling drivers: run the same trace of cloud
// services, batch analytics pods, and HPC gangs either through ONE
// unified orchestrator (converged) or through three static partitions
// (siloed), and report utilization/wait/makespan (experiment F4).
#pragma once

#include <vector>

#include "core/platform.hpp"
#include "core/siloed.hpp"
#include "util/types.hpp"

namespace evolve::core {

struct MixedJob {
  enum class Kind { kService, kBatch, kGang };
  Kind kind = Kind::kBatch;
  util::TimeNs arrival = 0;
  int pods = 1;  // gang width for kGang, replica count for kService
  cluster::Resources per_pod;
  util::TimeNs duration = 0;
};

struct ScheduleOutcome {
  double cpu_utilization = 0;
  util::TimeNs mean_wait = 0;
  util::TimeNs p95_wait = 0;
  util::TimeNs makespan = 0;
  int jobs_completed = 0;
  int pods_failed = 0;
};

/// Replays `trace` on one unified orchestrator; returns the outcome
/// after every job completes. Runs the simulation to completion.
ScheduleOutcome run_trace_unified(sim::Simulation& sim,
                                  orch::Orchestrator& orchestrator,
                                  const std::vector<MixedJob>& trace);

/// Replays `trace` over the siloed partitions: services to the cloud
/// silo, batch to big-data, gangs to HPC.
ScheduleOutcome run_trace_siloed(sim::Simulation& sim, SiloedPlatform& silos,
                                 const std::vector<MixedJob>& trace);

}  // namespace evolve::core
