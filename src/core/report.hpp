// Plain-text table rendering for benchmark and example output.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace evolve::core {

/// Fixed-column table printed in the style of the paper's result tables.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  void print(std::ostream& out = std::cout) const;
  std::string to_string() const;

  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace evolve::core
