// Plain-text table rendering for benchmark and example output, plus a
// machine-readable metric reporter (BENCH_<name>.json) so the perf
// trajectory of the simulation kernel can be tracked across PRs.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace evolve::core {

/// Fixed-column table printed in the style of the paper's result tables.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  void print(std::ostream& out = std::cout) const;
  std::string to_string() const;

  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Flat metric-name → value report. Benches build one of these and, when
/// invoked with `--json`, write it as `BENCH_<name>.json` in the working
/// directory. Insertion order is preserved in the output.
class MetricsReport {
 public:
  explicit MetricsReport(std::string bench_name);

  void set(const std::string& metric, double value);
  void set(const std::string& metric, std::int64_t value);
  void set(const std::string& metric, int value) {
    set(metric, static_cast<std::int64_t>(value));
  }

  std::string to_json() const;

  /// Writes `BENCH_<name>.json`; returns the file path.
  std::string write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

/// True when the command line contains `--json` (bench reporter mode).
bool json_mode(int argc, char** argv);

}  // namespace evolve::core
