// Cluster energy model (the EVOLVE consortium's headline metric):
// node idle power + active-core power + accelerator power, integrated
// over an experiment's makespan.
#pragma once

#include <string>

#include "util/types.hpp"

namespace evolve::core {

struct PowerModel {
  double node_idle_watts = 120.0;   // chassis + DRAM + NICs
  double per_core_watts = 5.5;      // marginal active-core power
  double fpga_idle_watts = 8.0;     // configured but idle card
  double fpga_active_watts = 28.0;  // card under load
};

struct EnergyReport {
  double idle_joules = 0;
  double cpu_joules = 0;
  double accel_joules = 0;

  double total_joules() const {
    return idle_joules + cpu_joules + accel_joules;
  }
  double kwh() const { return total_joules() / 3.6e6; }
  std::string summary() const;
};

/// Integrates the model over `horizon`:
///  - `nodes` chassis at idle power for the whole horizon,
///  - `mean_active_millicores` (time-weighted mean allocation) at
///    per-core power,
///  - `accel_devices` cards at idle power plus `mean_accel_utilization`
///    of the active-idle delta.
EnergyReport estimate_energy(const PowerModel& model, int nodes,
                             util::TimeNs horizon,
                             double mean_active_millicores,
                             int accel_devices = 0,
                             double mean_accel_utilization = 0.0);

/// Joules to execute `cpu_time` of work on CPU cores vs offloaded to an
/// FPGA with `speedup` (device time = cpu_time / speedup). Returns the
/// CPU/FPGA energy ratio (the "energy efficiency" factor).
double offload_energy_ratio(const PowerModel& model, util::TimeNs cpu_time,
                            double speedup, int cores_used = 1);

}  // namespace evolve::core
