// The EVOLVE converged platform: one cluster, one shared object store,
// one unified scheduler serving cloud pods, dataflow jobs, HPC gangs,
// and accelerator offloads — plus the workflow engine that mixes them.
//
// This is the paper's primary contribution assembled from the substrate
// libraries: Kubernetes-style orchestration (orch), Spark-style
// analytics (dataflow), MPI-style HPC (hpc), H3-style storage (storage),
// and FPGA sharing (accel), all on one simulated testbed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/pool.hpp"
#include "cluster/cluster.hpp"
#include "dataflow/engine.hpp"
#include "hpc/communicator.hpp"
#include "hpc/job.hpp"
#include "net/fabric.hpp"
#include "orch/controllers.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "storage/dataset.hpp"
#include "storage/object_store.hpp"
#include "trace/tracer.hpp"
#include "workflow/engine.hpp"

namespace evolve::core {

struct PlatformConfig {
  int compute_nodes = 8;
  int storage_nodes = 4;
  int accel_nodes = 2;
  int racks = 2;
  net::TopologyConfig topology;
  storage::ObjectStoreConfig store;
  dataflow::DataflowConfig dataflow;
  orch::OrchestratorConfig orchestrator;
  hpc::CommConfig comm;
  accel::DeviceConfig accel_device;
  /// Per-executor resources for dataflow steps.
  std::int64_t executor_millicores = 4000;
  util::Bytes executor_memory = 8 * util::kGiB;
  /// Per-rank resources for HPC steps.
  std::int64_t rank_millicores = 8000;
  util::Bytes rank_memory = 16 * util::kGiB;
  /// When true, dataflow executors prefer the storage nodes holding the
  /// job's input (converged data locality). Ablation switch.
  bool locality_placement = true;
};

class Platform : public workflow::StepRunner {
 public:
  explicit Platform(sim::Simulation& sim, PlatformConfig config = {});

  // Subsystem access (the public API surface examples build on).
  sim::Simulation& sim() { return sim_; }
  const cluster::Cluster& cluster() const { return cluster_; }
  const net::Topology& topology() const { return *topology_; }
  net::Fabric& fabric() { return *fabric_; }
  storage::ObjectStore& store() { return *store_; }
  storage::DatasetCatalog& catalog() { return *catalog_; }
  orch::Orchestrator& orchestrator() { return *orchestrator_; }
  dataflow::DataflowEngine& dataflow() { return *dataflow_; }
  accel::AccelPool& accel() { return *accel_; }
  const PlatformConfig& config() const { return config_; }

  /// Runs a mixed workflow; the callback receives the result.
  void run_workflow(const workflow::Workflow& wf,
                    std::function<void(const workflow::WorkflowResult&)> cb);

  /// StepRunner: dispatches one step to the right subsystem.
  void run_step(const workflow::Step& step,
                std::function<void(bool)> on_done) override;

  /// Runs a dataflow plan end to end: acquires executor pods (with
  /// data-locality preferences), executes, releases.
  void run_dataflow(const dataflow::LogicalPlan& plan, int executors,
                    int slots,
                    std::function<void(const dataflow::JobStats&)> cb);

  /// Runs an MPI program on a gang of `ranks` pods.
  void run_hpc(const hpc::MpiProgram& program, int ranks,
               std::function<void(const hpc::MpiRunStats&)> cb);

  /// Attaches a span tracer to every subsystem (workflow steps, pods,
  /// dataflow jobs, HPC phases, storage ops, network transfers, accel
  /// offloads). Null detaches; tracing off costs nothing.
  void set_tracer(trace::Tracer* tracer);

 private:
  std::vector<cluster::NodeId> executor_preferences(
      const dataflow::LogicalPlan& plan) const;

  sim::Simulation& sim_;
  PlatformConfig config_;
  cluster::Cluster cluster_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<storage::IoSubsystem> io_;
  std::unique_ptr<storage::ObjectStore> store_;
  std::unique_ptr<storage::DatasetCatalog> catalog_;
  std::unique_ptr<orch::Orchestrator> orchestrator_;
  std::unique_ptr<dataflow::DataflowEngine> dataflow_;
  std::unique_ptr<accel::AccelPool> accel_;
  std::unique_ptr<workflow::WorkflowEngine> workflow_engine_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace evolve::core
