#include "core/session.hpp"

#include <stdexcept>

namespace evolve::core {

util::TimeNs Session::now() const { return platform_.sim().now(); }

void Session::create_dataset(const std::string& name, int partitions,
                             util::Bytes total_bytes, bool warm_cache) {
  platform_.catalog().define(
      storage::DatasetSpec{name, partitions, total_bytes});
  platform_.catalog().preload(name, warm_cache);
}

util::TimeNs Session::ingest_dataset(const std::string& name, int partitions,
                                     util::Bytes total_bytes,
                                     cluster::NodeId client) {
  platform_.catalog().define(
      storage::DatasetSpec{name, partitions, total_bytes});
  const util::TimeNs start = now();
  bool done = false;
  platform_.catalog().ingest(client, name, [&done] { done = true; });
  platform_.sim().run();
  if (!done) throw std::logic_error("ingest did not complete");
  return now() - start;
}

dataflow::JobStats Session::run_dataflow(const dataflow::LogicalPlan& plan,
                                         int executors, int slots) {
  dataflow::JobStats stats;
  bool done = false;
  platform_.run_dataflow(plan, executors, slots,
                         [&](const dataflow::JobStats& s) {
                           stats = s;
                           done = true;
                         });
  platform_.sim().run();
  if (!done) throw std::logic_error("dataflow job did not complete");
  return stats;
}

hpc::MpiRunStats Session::run_hpc(const hpc::MpiProgram& program, int ranks) {
  hpc::MpiRunStats stats;
  bool done = false;
  platform_.run_hpc(program, ranks, [&](const hpc::MpiRunStats& s) {
    stats = s;
    done = true;
  });
  platform_.sim().run();
  if (!done) throw std::logic_error("hpc job did not complete");
  return stats;
}

workflow::WorkflowResult Session::run_workflow(const workflow::Workflow& wf) {
  workflow::WorkflowResult result;
  bool done = false;
  platform_.run_workflow(wf, [&](const workflow::WorkflowResult& r) {
    result = r;
    done = true;
  });
  platform_.sim().run();
  if (!done) throw std::logic_error("workflow did not complete");
  return result;
}

util::TimeNs Session::run_accel(const std::string& kernel,
                                util::TimeNs cpu_time) {
  const util::TimeNs start = now();
  bool done = false;
  platform_.accel().offload(kernel, cpu_time, cluster::kInvalidNode,
                            [&done] { done = true; });
  platform_.sim().run();
  if (!done) throw std::logic_error("accel offload did not complete");
  return now() - start;
}

}  // namespace evolve::core
