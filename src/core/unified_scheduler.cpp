#include "core/unified_scheduler.hpp"

#include <memory>

#include "metrics/histogram.hpp"

namespace evolve::core {

namespace {

struct TraceState {
  int jobs_remaining = 0;
  int pods_failed = 0;
  util::TimeNs last_finish = 0;
};

/// Submits one job to `orchestrator` at its arrival time.
void submit_job(sim::Simulation& sim, orch::Orchestrator& orchestrator,
                const MixedJob& job, std::shared_ptr<TraceState> state) {
  sim.at(job.arrival, [&sim, &orchestrator, job, state] {
    auto pods_left = std::make_shared<int>(job.pods);
    auto pod_done = [&sim, state, pods_left](orch::PodId,
                                             orch::PodPhase phase) {
      if (phase == orch::PodPhase::kFailed) ++state->pods_failed;
      if (--*pods_left == 0) {
        --state->jobs_remaining;
        state->last_finish = sim.now();
      }
    };
    if (job.kind == MixedJob::Kind::kGang) {
      std::vector<orch::PodSpec> specs;
      for (int i = 0; i < job.pods; ++i) {
        orch::PodSpec spec;
        spec.name = "gang-pod";
        spec.tenant = "hpc";
        spec.request = job.per_pod;
        specs.push_back(std::move(spec));
      }
      const auto ids =
          orchestrator.submit_gang(specs, job.duration, {}, pod_done);
      if (ids.empty()) {
        state->pods_failed += job.pods;
        --state->jobs_remaining;
      }
      return;
    }
    for (int i = 0; i < job.pods; ++i) {
      orch::PodSpec spec;
      spec.name = job.kind == MixedJob::Kind::kService ? "svc" : "batch";
      spec.tenant = spec.name;
      spec.request = job.per_pod;
      const auto id = orchestrator.submit(spec, job.duration, {}, pod_done);
      if (id == orch::kInvalidPod) {
        ++state->pods_failed;
        if (--*pods_left == 0) --state->jobs_remaining;
      }
    }
  });
}

ScheduleOutcome collect(sim::Simulation& sim,
                        const std::vector<const orch::Orchestrator*>& orchs,
                        const std::vector<double>& capacities,
                        const TraceState& state) {
  ScheduleOutcome outcome;
  metrics::Histogram waits;
  double weighted_util = 0;
  double total_capacity = 0;
  for (std::size_t i = 0; i < orchs.size(); ++i) {
    waits.merge(orchs[i]->metrics().histogram("pod_wait_ms"));
    weighted_util += orchs[i]->cpu_utilization() * capacities[i];
    total_capacity += capacities[i];
  }
  outcome.cpu_utilization =
      total_capacity > 0 ? weighted_util / total_capacity : 0;
  outcome.mean_wait =
      static_cast<util::TimeNs>(waits.mean()) * util::kMillisecond;
  outcome.p95_wait = waits.p95() * util::kMillisecond;
  outcome.makespan = state.last_finish;
  outcome.pods_failed = state.pods_failed;
  (void)sim;
  return outcome;
}

double cpu_capacity(const cluster::Cluster& cluster,
                    const std::vector<cluster::NodeId>& nodes) {
  double total = 0;
  for (auto n : nodes) {
    total += static_cast<double>(cluster.node(n).allocatable().cpu_millicores);
  }
  return total;
}

}  // namespace

ScheduleOutcome run_trace_unified(sim::Simulation& sim,
                                  orch::Orchestrator& orchestrator,
                                  const std::vector<MixedJob>& trace) {
  auto state = std::make_shared<TraceState>();
  state->jobs_remaining = static_cast<int>(trace.size());
  for (const MixedJob& job : trace) {
    submit_job(sim, orchestrator, job, state);
  }
  sim.run();
  ScheduleOutcome outcome = collect(
      sim, {&orchestrator},
      {static_cast<double>(
          orchestrator.cluster().total_allocatable().cpu_millicores)},
      *state);
  outcome.jobs_completed = static_cast<int>(trace.size()) -
                           state->jobs_remaining;
  return outcome;
}

ScheduleOutcome run_trace_siloed(sim::Simulation& sim, SiloedPlatform& silos,
                                 const std::vector<MixedJob>& trace) {
  auto state = std::make_shared<TraceState>();
  state->jobs_remaining = static_cast<int>(trace.size());
  for (const MixedJob& job : trace) {
    Silo silo = Silo::kBigData;
    if (job.kind == MixedJob::Kind::kService) silo = Silo::kCloud;
    if (job.kind == MixedJob::Kind::kGang) silo = Silo::kHpc;
    submit_job(sim, silos.orchestrator(silo), job, state);
  }
  sim.run();
  std::vector<const orch::Orchestrator*> orchs;
  std::vector<double> capacities;
  for (Silo silo : {Silo::kCloud, Silo::kBigData, Silo::kHpc}) {
    orchs.push_back(&silos.orchestrator(silo));
    capacities.push_back(
        cpu_capacity(silos.cluster(), silos.silo_nodes(silo)));
  }
  ScheduleOutcome outcome = collect(sim, orchs, capacities, *state);
  outcome.jobs_completed = static_cast<int>(trace.size()) -
                           state->jobs_remaining;
  return outcome;
}

}  // namespace evolve::core
