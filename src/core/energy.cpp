#include "core/energy.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace evolve::core {

std::string EnergyReport::summary() const {
  std::ostringstream out;
  out << util::fixed(total_joules() / 1000.0, 1) << " kJ (idle "
      << util::fixed(idle_joules / 1000.0, 1) << ", cpu "
      << util::fixed(cpu_joules / 1000.0, 1) << ", accel "
      << util::fixed(accel_joules / 1000.0, 1) << ")";
  return out.str();
}

EnergyReport estimate_energy(const PowerModel& model, int nodes,
                             util::TimeNs horizon,
                             double mean_active_millicores,
                             int accel_devices,
                             double mean_accel_utilization) {
  if (nodes < 0 || accel_devices < 0) {
    throw std::invalid_argument("negative hardware counts");
  }
  if (horizon < 0) throw std::invalid_argument("negative horizon");
  if (mean_active_millicores < 0 || mean_accel_utilization < 0 ||
      mean_accel_utilization > 1.0) {
    throw std::invalid_argument("bad utilization inputs");
  }
  const double seconds = util::to_seconds(horizon);
  EnergyReport report;
  report.idle_joules = model.node_idle_watts * nodes * seconds;
  report.cpu_joules =
      model.per_core_watts * (mean_active_millicores / 1000.0) * seconds;
  report.accel_joules =
      (model.fpga_idle_watts +
       (model.fpga_active_watts - model.fpga_idle_watts) *
           mean_accel_utilization) *
      accel_devices * seconds;
  return report;
}

double offload_energy_ratio(const PowerModel& model, util::TimeNs cpu_time,
                            double speedup, int cores_used) {
  if (speedup <= 0) throw std::invalid_argument("speedup must be > 0");
  if (cores_used <= 0) throw std::invalid_argument("cores must be > 0");
  if (cpu_time <= 0) throw std::invalid_argument("cpu_time must be > 0");
  const double cpu_seconds = util::to_seconds(cpu_time);
  const double cpu_joules =
      model.per_core_watts * cores_used * cpu_seconds;
  const double device_seconds = cpu_seconds / speedup;
  const double fpga_joules = model.fpga_active_watts * device_seconds;
  return cpu_joules / fpga_joules;
}

}  // namespace evolve::core
