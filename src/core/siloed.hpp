// The siloed baseline: the SAME hardware as the converged platform, but
// operated as three disjoint silos (cloud / big-data / HPC), each with
// its own scheduler partition and its own storage namespace.
//
// Cross-silo dataset consumption requires stage-copying partitions
// between stores through a gateway node — exactly the overhead EVOLVE's
// shared-storage convergence eliminates. Static partitioning also strands
// capacity, which the unified scheduler recovers (experiment F4).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/pool.hpp"
#include "cluster/cluster.hpp"
#include "core/platform.hpp"
#include "dataflow/engine.hpp"
#include "hpc/communicator.hpp"
#include "hpc/job.hpp"
#include "net/fabric.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "storage/dataset.hpp"
#include "workflow/engine.hpp"

namespace evolve::core {

enum class Silo { kCloud, kBigData, kHpc };
const char* to_string(Silo silo);

class SiloedPlatform : public workflow::StepRunner {
 public:
  /// Builds the same testbed as Platform(config) and partitions it:
  /// compute nodes split three ways (cloud/bigdata/hpc), storage nodes
  /// split between the big-data store and the HPC store, accel nodes to
  /// the HPC silo. Requires >= 3 compute and >= 2 storage nodes.
  explicit SiloedPlatform(sim::Simulation& sim, PlatformConfig config = {});

  sim::Simulation& sim() { return sim_; }
  const cluster::Cluster& cluster() const { return cluster_; }
  const std::vector<cluster::NodeId>& silo_nodes(Silo silo) const;
  orch::Orchestrator& orchestrator(Silo silo);
  storage::ObjectStore& bigdata_store() { return *bigdata_store_; }
  storage::ObjectStore& hpc_store() { return *hpc_store_; }
  storage::DatasetCatalog& bigdata_catalog() { return *bigdata_catalog_; }
  storage::DatasetCatalog& hpc_catalog() { return *hpc_catalog_; }
  accel::AccelPool& accel() { return *accel_; }
  net::Fabric& fabric() { return *fabric_; }

  void run_workflow(const workflow::Workflow& wf,
                    std::function<void(const workflow::WorkflowResult&)> cb);

  void run_step(const workflow::Step& step,
                std::function<void(bool)> on_done) override;

  /// Copies `dataset` from whichever silo store holds it into `target`
  /// (no-op when already materialized there). Public for tests/benches.
  void stage_dataset(const std::string& dataset,
                     storage::DatasetCatalog& target,
                     std::function<void()> on_done);

  util::Bytes staged_bytes() const { return staged_bytes_; }
  std::int64_t staging_operations() const { return staging_ops_; }

 private:
  storage::DatasetCatalog* find_catalog_with(const std::string& dataset);
  void stage_all(std::vector<std::string> datasets,
                 storage::DatasetCatalog& target,
                 std::function<void()> on_done);
  void run_dataflow_step(const workflow::Step& step,
                         std::function<void(bool)> on_done);
  void run_hpc_step(const workflow::Step& step,
                    std::function<void(bool)> on_done);

  sim::Simulation& sim_;
  PlatformConfig config_;
  cluster::Cluster cluster_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<storage::IoSubsystem> io_;
  std::map<Silo, std::vector<cluster::NodeId>> silo_nodes_;
  std::unique_ptr<storage::ObjectStore> bigdata_store_;
  std::unique_ptr<storage::ObjectStore> hpc_store_;
  std::unique_ptr<storage::DatasetCatalog> bigdata_catalog_;
  std::unique_ptr<storage::DatasetCatalog> hpc_catalog_;
  std::map<Silo, std::unique_ptr<orch::Orchestrator>> orchestrators_;
  std::unique_ptr<dataflow::DataflowEngine> dataflow_;
  std::unique_ptr<accel::AccelPool> accel_;
  std::unique_ptr<workflow::WorkflowEngine> workflow_engine_;
  util::Bytes staged_bytes_ = 0;
  std::int64_t staging_ops_ = 0;
};

}  // namespace evolve::core
