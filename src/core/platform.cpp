#include "core/platform.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace evolve::core {

Platform::Platform(sim::Simulation& sim, PlatformConfig config)
    : sim_(sim),
      config_(config),
      cluster_(cluster::make_testbed(config.compute_nodes,
                                     config.storage_nodes, config.accel_nodes,
                                     config.racks)) {
  topology_ = std::make_unique<net::Topology>(cluster_, config_.topology);
  fabric_ = std::make_unique<net::Fabric>(sim_, *topology_);
  io_ = std::make_unique<storage::IoSubsystem>(sim_, cluster_);
  store_ = std::make_unique<storage::ObjectStore>(
      sim_, cluster_, *fabric_, *io_,
      cluster_.nodes_with_label("role=storage"), config_.store);
  catalog_ = std::make_unique<storage::DatasetCatalog>(*store_);
  orchestrator_ = std::make_unique<orch::Orchestrator>(
      sim_, cluster_, orch::SchedulingPolicy::spreading(cluster_),
      config_.orchestrator);
  dataflow_ = std::make_unique<dataflow::DataflowEngine>(
      sim_, cluster_, *fabric_, *io_, *catalog_, config_.dataflow);
  accel_ = std::make_unique<accel::AccelPool>(
      sim_, cluster_, accel::KernelRegistry::standard(),
      config_.accel_device);
  workflow_engine_ = std::make_unique<workflow::WorkflowEngine>(sim_, *this);
}

void Platform::run_workflow(
    const workflow::Workflow& wf,
    std::function<void(const workflow::WorkflowResult&)> cb) {
  workflow_engine_->run(wf, std::move(cb));
}

void Platform::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  fabric_->set_tracer(tracer);
  store_->set_tracer(tracer);
  orchestrator_->set_tracer(tracer);
  dataflow_->set_tracer(tracer);
  workflow_engine_->set_tracer(tracer);
}

std::vector<cluster::NodeId> Platform::executor_preferences(
    const dataflow::LogicalPlan& plan) const {
  if (!config_.locality_placement) return {};
  std::vector<cluster::NodeId> preferred;
  for (const dataflow::Operator& op : plan.ops()) {
    if (op.kind != dataflow::OpKind::kSource) continue;
    if (!catalog_->defined(op.dataset)) continue;
    for (const auto& replicas : catalog_->locations(op.dataset)) {
      for (cluster::NodeId node : replicas) {
        if (std::find(preferred.begin(), preferred.end(), node) ==
            preferred.end()) {
          preferred.push_back(node);
        }
      }
    }
  }
  return preferred;
}

void Platform::run_dataflow(
    const dataflow::LogicalPlan& plan, int executors, int slots,
    std::function<void(const dataflow::JobStats&)> cb) {
  if (executors <= 0 || slots <= 0) {
    throw std::invalid_argument("dataflow job needs executors and slots");
  }
  // Validate up front (synchronously) so failures surface here rather
  // than inside a later scheduling event: plan structure + materialized
  // inputs.
  (void)dataflow::PhysicalPlan::compile(plan);
  for (const dataflow::Operator& op : plan.ops()) {
    if (op.kind == dataflow::OpKind::kSource &&
        (!catalog_->defined(op.dataset) ||
         !catalog_->materialized(op.dataset))) {
      throw std::invalid_argument("input dataset not materialized: " +
                                  op.dataset);
    }
  }
  const auto preferred = executor_preferences(plan);

  struct Acquire {
    std::vector<orch::PodId> pods;
    std::vector<dataflow::ExecutorSpec> specs;
    int remaining;
  };
  auto acquire = std::make_shared<Acquire>();
  acquire->remaining = executors;

  orch::PodSpec pod;
  pod.name = "dataflow-exec";
  pod.tenant = "dataflow";
  pod.request =
      cluster::cpu_mem(config_.executor_millicores, config_.executor_memory);
  pod.preferred_nodes = preferred;

  // Executor pods start from a scheduler event where the submitter's
  // trace context is gone; capture it now so the dataflow job span
  // still parents under e.g. the workflow step that launched it.
  const trace::SpanId trace_parent =
      tracer_ ? tracer_->current() : trace::kNoSpan;
  for (int i = 0; i < executors; ++i) {
    orch::PodSpec spec = pod;
    spec.name = "dataflow-exec-" + std::to_string(i);
    const orch::PodId id = orchestrator_->submit(
        spec, /*duration=*/-1,
        [this, acquire, slots, plan, cb,
         trace_parent](orch::PodId, cluster::NodeId node) {
          acquire->specs.push_back(dataflow::ExecutorSpec{node, slots});
          if (--acquire->remaining > 0) return;
          trace::ScopedContext tctx(tracer_, trace_parent);
          dataflow_->run(plan, acquire->specs,
                         [this, acquire, cb](const dataflow::JobStats& stats) {
                           for (orch::PodId pod_id : acquire->pods) {
                             orchestrator_->finish(pod_id);
                           }
                           cb(stats);
                         });
        });
    if (id == orch::kInvalidPod) {
      for (orch::PodId pod_id : acquire->pods) orchestrator_->cancel(pod_id);
      throw std::runtime_error("executor pod rejected by quota");
    }
    acquire->pods.push_back(id);
  }
}

void Platform::run_hpc(const hpc::MpiProgram& program, int ranks,
                       std::function<void(const hpc::MpiRunStats&)> cb) {
  if (ranks <= 0) throw std::invalid_argument("hpc job needs ranks");

  struct Gang {
    std::vector<orch::PodId> pods;
    std::vector<cluster::NodeId> rank_nodes;
    std::shared_ptr<hpc::Communicator> comm;
    int remaining;
  };
  auto gang = std::make_shared<Gang>();
  gang->remaining = ranks;
  gang->rank_nodes.resize(static_cast<std::size_t>(ranks),
                          cluster::kInvalidNode);

  std::vector<orch::PodSpec> specs;
  specs.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    orch::PodSpec spec;
    spec.name = "mpi-rank-" + std::to_string(r);
    spec.tenant = "hpc";
    spec.request =
        cluster::cpu_mem(config_.rank_millicores, config_.rank_memory);
    specs.push_back(std::move(spec));
  }

  // submit_gang reports starts per pod; recover the rank from the pod id.
  // As in run_dataflow, capture the submitter's trace context so the MPI
  // phase spans parent under the launching step.
  const trace::SpanId trace_parent =
      tracer_ ? tracer_->current() : trace::kNoSpan;
  auto on_start = [this, gang, program, cb, trace_parent](
                      orch::PodId id, cluster::NodeId node) {
    const auto it = std::find(gang->pods.begin(), gang->pods.end(), id);
    const auto rank = static_cast<std::size_t>(it - gang->pods.begin());
    gang->rank_nodes[rank] = node;
    if (--gang->remaining > 0) return;
    gang->comm = std::make_shared<hpc::Communicator>(
        sim_, *fabric_, gang->rank_nodes, config_.comm);
    trace::ScopedContext tctx(tracer_, trace_parent);
    hpc::run_mpi_program(
        sim_, *gang->comm, program,
        [this, gang, cb](const hpc::MpiRunStats& stats) {
          for (orch::PodId pod_id : gang->pods) {
            orchestrator_->finish(pod_id);
          }
          cb(stats);
        },
        tracer_);
  };

  gang->pods = orchestrator_->submit_gang(specs, /*duration=*/-1, on_start);
  if (gang->pods.empty()) {
    throw std::runtime_error("hpc gang rejected by quota");
  }
}

void Platform::run_step(const workflow::Step& step,
                        std::function<void(bool)> on_done) {
  using workflow::StepKind;
  try {
    switch (step.kind) {
      case StepKind::kContainer: {
        const orch::PodId id = orchestrator_->submit(
            step.pod, step.pod_duration, {},
            [on_done](orch::PodId, orch::PodPhase phase) {
              on_done(phase == orch::PodPhase::kSucceeded);
            });
        if (id == orch::kInvalidPod) on_done(false);
        return;
      }
      case StepKind::kDataflow:
        run_dataflow(step.plan, step.dataflow_executors, step.dataflow_slots,
                     [on_done](const dataflow::JobStats&) { on_done(true); });
        return;
      case StepKind::kHpc:
        run_hpc(step.mpi, step.hpc_ranks,
                [on_done](const hpc::MpiRunStats&) { on_done(true); });
        return;
      case StepKind::kAccel: {
        const trace::SpanId span = trace::begin_span(
            tracer_, trace::Layer::kAccel, "accel.offload");
        if (span != trace::kNoSpan) {
          tracer_->annotate(span, "kernel", step.kernel);
        }
        accel_->offload(step.kernel, step.accel_cpu_time,
                        cluster::kInvalidNode, [this, span, on_done] {
                          trace::end_span(tracer_, span);
                          on_done(true);
                        });
        return;
      }
      case StepKind::kCustom:
        if (!step.custom) throw std::invalid_argument("custom step w/o body");
        step.custom(on_done);
        return;
    }
    throw std::logic_error("unknown step kind");
  } catch (const std::exception& e) {
    EVOLVE_LOG(kWarn, "platform") << "step '" << step.name
                                  << "' failed: " << e.what();
    on_done(false);
  }
}

}  // namespace evolve::core
