// Network partition injection on top of net::Fabric reachability masks.
//
// A PartitionInjector composes any number of concurrently active
// partition "edicts" — symmetric splits, node/rack isolation, and
// asymmetric (one-directional) partitions — into a single reachability
// mask. Each edict labels every host; a host's signature across the
// active edicts defines its reachability equivalence class, and the
// injector rebuilds the class-level blocked matrix on every start/heal
// transition (partitions are rare events, so the O(hosts · edicts)
// rebuild is off the hot path). The fabric parks flows crossing a
// blocked pair and resumes them on heal, so the layers above experience
// a partition as *stalled* — not failed — traffic: exactly the
// "slow vs. dead is undecidable" ambiguity that lease-based liveness
// (orch::LeaseManager) exists to resolve.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::fault {

using PartitionId = std::int64_t;

struct PartitionInjectorConfig {
  std::uint64_t seed = 1;  // drives the seeded random-partition process
};

class PartitionInjector {
 public:
  /// Called with the simulated time of the transition.
  using PartitionFn = std::function<void(util::TimeNs)>;

  PartitionInjector(sim::Simulation& sim, net::Fabric& fabric,
                    PartitionInjectorConfig config = {});
  PartitionInjector(const PartitionInjector&) = delete;
  PartitionInjector& operator=(const PartitionInjector&) = delete;

  /// Registers a subscriber; callbacks fire in registration order, once
  /// per partition start / heal.
  void on_partition(PartitionFn fn) { partition_subs_.push_back(std::move(fn)); }
  void on_heal(PartitionFn fn) { heal_subs_.push_back(std::move(fn)); }

  // -- Immediate partitions (each returns a healable id) --------------
  /// Symmetric split: hosts in different sides cannot reach each other
  /// in either direction. Hosts listed in no side are unaffected (they
  /// still reach everyone — a partial partition with bridge nodes).
  PartitionId split(const std::vector<std::vector<cluster::NodeId>>& sides);
  /// Cuts `nodes` off from the rest of the cluster (both directions);
  /// the isolated nodes still reach each other.
  PartitionId isolate(const std::vector<cluster::NodeId>& nodes);
  /// Isolates every host in one rack (ToR partition, not ToR death:
  /// intra-rack traffic still flows).
  PartitionId isolate_rack(int rack);
  /// Asymmetric partition: hosts in `from` cannot reach hosts in `to`,
  /// but the reverse direction still works.
  PartitionId asymmetric(const std::vector<cluster::NodeId>& from,
                         const std::vector<cluster::NodeId>& to);
  /// Heals one partition. No-op if already healed.
  void heal(PartitionId id);
  /// Heals everything (end-of-experiment drain).
  void heal_all();

  // -- Deterministic schedules ---------------------------------------
  void schedule_split(std::vector<std::vector<cluster::NodeId>> sides,
                      util::TimeNs at, util::TimeNs duration);
  void schedule_rack_isolation(int rack, util::TimeNs at,
                               util::TimeNs duration);
  void schedule_asymmetric(std::vector<cluster::NodeId> from,
                           std::vector<cluster::NodeId> to, util::TimeNs at,
                           util::TimeNs duration);

  // -- Seeded random process -----------------------------------------
  /// Starts a renewal process injecting rack isolations: exponential
  /// inter-partition time with mean `mtbp_s` seconds, exponential
  /// duration with mean `mean_duration_s`, uniformly random rack. No
  /// partitions are *initiated* after `until` (active ones still heal).
  /// Deterministic for a given config seed.
  void random_partitions(double mtbp_s, double mean_duration_s,
                         util::TimeNs until);

  bool active() const { return !edicts_.empty(); }
  int active_partitions() const { return static_cast<int>(edicts_.size()); }
  std::int64_t partitions_injected() const { return partitions_injected_; }
  std::int64_t heals() const { return heals_; }
  /// Accumulated seconds during which at least one partition was active
  /// (open intervals are charged up to `now`).
  double partition_seconds() const;

 private:
  struct Edict {
    bool asymmetric = false;
    // Per-host label. Symmetric edicts: 0 = unaffected, labels 1..k are
    // mutually unreachable sides. Asymmetric edicts: bitmask with 1 =
    // "from" side, 2 = "to" side; blocked when src has the from bit and
    // dst the to bit.
    std::vector<int> labels;
  };
  struct RandomProcess {
    double mtbp_s;
    double mean_duration_s;
    util::TimeNs until;
    util::Rng rng;
  };

  PartitionId install(Edict edict);
  /// Recomputes host equivalence classes and the blocked matrix from the
  /// active edicts and pushes the mask into the fabric.
  void rebuild();
  static bool edict_blocks(const Edict& e, int from_label, int to_label);
  void arm_random(std::size_t process);

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  PartitionInjectorConfig config_;
  util::Rng rng_;
  std::vector<PartitionFn> partition_subs_;
  std::vector<PartitionFn> heal_subs_;
  PartitionId next_id_ = 1;
  std::map<PartitionId, Edict> edicts_;  // id order: deterministic rebuild
  std::vector<RandomProcess> processes_;
  std::int64_t partitions_injected_ = 0;
  std::int64_t heals_ = 0;
  util::TimeNs partition_ns_ = 0;  // closed any-partition-active intervals
  util::TimeNs any_since_ = 0;     // start of the current open interval
};

}  // namespace evolve::fault
