// Glue between the FaultInjector and the platform layers.
//
// Each connect() subscribes one subsystem to failure/recovery events so
// a single node crash propagates coherently: the orchestrator evicts
// pods, the dataflow engine re-executes lost tasks, the object store
// re-replicates, and the batch queue aborts/requeues gang jobs. The
// layers stay decoupled — none of them includes fault_injector.hpp.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/gray.hpp"
#include "fault/health.hpp"

namespace evolve::orch {
class Orchestrator;
class LeaseManager;
}
namespace evolve::dataflow {
class DataflowEngine;
}
namespace evolve::storage {
class ObjectStore;
}
namespace evolve::hpc {
class BatchQueue;
}
namespace evolve::net {
class Fabric;
}
namespace evolve::accel {
class AccelPool;
}
namespace evolve::serve {
class Service;
}
namespace evolve::tablet {
class TabletService;
}

namespace evolve::fault {

/// Orchestrator: fail_node()/recover_node() for nodes it manages.
void connect(FaultInjector& injector, orch::Orchestrator& orch);

/// Dataflow engine: kill running copies, drop shuffle outputs, park
/// executor slots until recovery.
void connect(FaultInjector& injector, dataflow::DataflowEngine& engine);

/// Object store: drop dead replicas, repair, rejoin empty on recovery.
void connect(FaultInjector& injector, storage::ObjectStore& store);

/// Batch queue: `queue_nodes[i]` is the cluster node backing queue node
/// index i; crashes of other nodes are ignored.
void connect(FaultInjector& injector, hpc::BatchQueue& queue,
             std::vector<cluster::NodeId> queue_nodes);

// -- Leases / partitions ------------------------------------------------

/// Lease manager: a crashed node's lease pauses (the crash path owns its
/// pods) and resumes fresh on recovery — so a node that is *down* is
/// never double-counted as *unreachable*.
void connect(FaultInjector& injector, orch::LeaseManager& leases);

/// Object store fencing: a lease expiry fences the node at its new
/// epoch, so writes the isolated (but still live) node issues under the
/// old epoch are rejected — the zombie-writer defense.
void connect(orch::LeaseManager& leases, storage::ObjectStore& store);

/// Serving: lease expiry drains the node's replicas; reconnect undrains
/// them and (when `ramp_window` > 0) ramps traffic back gradually
/// instead of stampeding the healed node.
void connect(orch::LeaseManager& leases, serve::Service& service,
             util::TimeNs ramp_window = 0);

/// Health scoring: crashed nodes drop out of peer medians while down.
void connect(FaultInjector& injector, HealthScorer& scorer);

/// Health scoring: lease-expired (unreachable) nodes drop out of peer
/// medians until they reconnect.
void connect(orch::LeaseManager& leases, HealthScorer& scorer);

// -- Gray failures ----------------------------------------------------

/// Dataflow engine: CPU slowdown factors stretch task service times.
void connect(GrayInjector& gray, dataflow::DataflowEngine& engine);

/// Accelerator pool: devices on a slowed node pace down.
void connect(GrayInjector& gray, accel::AccelPool& pool);

/// Fabric: NIC degradation scales the node's host up/down link capacity
/// (bandwidth loss and packet-loss goodput penalty folded together) and
/// adds one-way latency to new transfers through the node.
void connect(GrayInjector& gray, net::Fabric& fabric);

/// Object store: bit-rot events corrupt seeded random stored replicas.
void connect(GrayInjector& gray, storage::ObjectStore& store);

/// Quarantine time-to-detect accounting: degradation starts are noted so
/// the controller can report time-to-quarantine.
void connect(GrayInjector& gray, QuarantineController& controller);

/// Health scoring: every task completion on a node (winners and losers)
/// feeds the scorer's per-node EWMA.
void connect(dataflow::DataflowEngine& engine, HealthScorer& scorer);

/// Orchestrator quarantine: flagged nodes stop receiving pods, drain,
/// and rejoin when probed back in.
void connect(QuarantineController& controller, orch::Orchestrator& orch);

/// Dataflow quarantine: flagged nodes stop receiving tasks; their
/// running copies get health-driven speculative backups elsewhere.
void connect(QuarantineController& controller,
             dataflow::DataflowEngine& engine);

// -- Request serving ---------------------------------------------------

/// Service: gray CPU slowdowns stretch batch execution on replicas of
/// the affected node.
void connect(GrayInjector& gray, serve::Service& service);

/// Serving quarantine: the router drains flagged nodes (skips their
/// replicas) and puts them back when the probe clears them.
void connect(QuarantineController& controller, serve::Service& service);

/// Health scoring: every batch execution on a replica feeds the
/// per-node EWMA, so serving load alone can surface a gray node.
void connect(serve::Service& service, HealthScorer& scorer);

// -- Tablets (stateful serving) ----------------------------------------

/// Tablets: lease expiry sheds the node's tablets (recovery re-open on
/// survivors) without telling the node — its in-flight epoch-stamped
/// WAL/flush PUTs become zombie writes. Wire connect(leases, store)
/// FIRST so the store's fence is raised before the tablet layer reacts.
/// Reconnect hands the node its new epoch and lets it host again.
void connect(orch::LeaseManager& leases, tablet::TabletService& tablets);

/// Tablets: gray CPU slowdowns stretch tablet op execution on the node.
void connect(GrayInjector& gray, tablet::TabletService& tablets);

/// Tablets: quarantined nodes drain — their tablets move off gracefully
/// and the balancer stops targeting them until the probe clears them.
void connect(QuarantineController& controller,
             tablet::TabletService& tablets);

}  // namespace evolve::fault
