// Glue between the FaultInjector and the platform layers.
//
// Each connect() subscribes one subsystem to failure/recovery events so
// a single node crash propagates coherently: the orchestrator evicts
// pods, the dataflow engine re-executes lost tasks, the object store
// re-replicates, and the batch queue aborts/requeues gang jobs. The
// layers stay decoupled — none of them includes fault_injector.hpp.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"

namespace evolve::orch {
class Orchestrator;
}
namespace evolve::dataflow {
class DataflowEngine;
}
namespace evolve::storage {
class ObjectStore;
}
namespace evolve::hpc {
class BatchQueue;
}

namespace evolve::fault {

/// Orchestrator: fail_node()/recover_node() for nodes it manages.
void connect(FaultInjector& injector, orch::Orchestrator& orch);

/// Dataflow engine: kill running copies, drop shuffle outputs, park
/// executor slots until recovery.
void connect(FaultInjector& injector, dataflow::DataflowEngine& engine);

/// Object store: drop dead replicas, repair, rejoin empty on recovery.
void connect(FaultInjector& injector, storage::ObjectStore& store);

/// Batch queue: `queue_nodes[i]` is the cluster node backing queue node
/// index i; crashes of other nodes are ignored.
void connect(FaultInjector& injector, hpc::BatchQueue& queue,
             std::vector<cluster::NodeId> queue_nodes);

}  // namespace evolve::fault
