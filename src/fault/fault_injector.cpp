#include "fault/fault_injector.hpp"

#include <stdexcept>

namespace evolve::fault {

void FaultInjector::schedule_failure(cluster::NodeId node, util::TimeNs at) {
  sim_.at(at, [this, node] { kill(node); });
}

void FaultInjector::schedule_recovery(cluster::NodeId node, util::TimeNs at) {
  sim_.at(at, [this, node] { restore(node); });
}

void FaultInjector::schedule_outage(cluster::NodeId node, util::TimeNs at,
                                    util::TimeNs downtime) {
  if (downtime <= 0) throw std::invalid_argument("outage needs downtime > 0");
  const util::TimeNs end = at + downtime;
  schedule_failure(node, at);
  sim_.at(end, [this, node, end] {
    const auto it = outage_hold_until_.find(node);
    // A longer overlapping outage still holds the node down; its own
    // recovery event will run this check again at the later end time.
    if (it != outage_hold_until_.end() && it->second > end) return;
    outage_hold_until_.erase(node);
    restore(node);
  });
  util::TimeNs& hold = outage_hold_until_[node];
  if (end > hold) hold = end;
}

void FaultInjector::schedule_rack_outage(const cluster::Cluster& cluster,
                                         int rack, util::TimeNs at,
                                         util::TimeNs downtime) {
  if (rack < 0 || rack >= cluster.rack_count()) {
    throw std::invalid_argument("rack outage: no such rack");
  }
  bool any = false;
  for (cluster::NodeId node = 0; node < cluster.size(); ++node) {
    if (cluster.node(node).rack != rack) continue;
    schedule_outage(node, at, downtime);
    any = true;
  }
  if (!any) throw std::invalid_argument("rack outage: rack has no hosts");
  ++rack_outages_;
  metrics_.count("rack_outages");
}

void FaultInjector::random_process(const std::vector<cluster::NodeId>& nodes,
                                   double mtbf_s, double mttr_s,
                                   util::TimeNs until) {
  if (mtbf_s <= 0 || mttr_s <= 0) {
    throw std::invalid_argument("MTBF and MTTR must be > 0");
  }
  for (cluster::NodeId node : nodes) {
    processes_.push_back(Process{node, mtbf_s, mttr_s, until, rng_.fork()});
    arm_failure(processes_.size() - 1);
  }
}

void FaultInjector::arm_failure(std::size_t process) {
  Process& p = processes_[process];
  const auto ttf =
      static_cast<util::TimeNs>(p.rng.exponential(1.0 / p.mtbf_s) * 1e9);
  const util::TimeNs when = sim_.now() + ttf;
  if (when > p.until) return;  // process expires: no more failures initiated
  sim_.at(when, [this, process] {
    const cluster::NodeId node = processes_[process].node;
    if (!is_down(node)) {
      kill(node);
      arm_recovery(process);
    } else {
      // Someone else downed the node; try again after it comes back.
      arm_failure(process);
    }
  });
}

void FaultInjector::arm_recovery(std::size_t process) {
  Process& p = processes_[process];
  const auto ttr =
      static_cast<util::TimeNs>(p.rng.exponential(1.0 / p.mttr_s) * 1e9);
  sim_.after(ttr, [this, process] {
    const cluster::NodeId node = processes_[process].node;
    if (is_down(node)) restore(node);
    arm_failure(process);
  });
}

void FaultInjector::kill(cluster::NodeId node) {
  if (!down_.insert(node).second) return;
  down_since_[node] = sim_.now();
  ++failures_;
  metrics_.count("node_failures");
  metrics_.set_gauge("nodes_down", static_cast<double>(down_.size()));
  for (const FaultFn& fn : failure_subs_) fn(node, sim_.now());
}

void FaultInjector::restore(cluster::NodeId node) {
  if (down_.erase(node) == 0) return;
  const auto it = down_since_.find(node);
  downtime_ns_ += sim_.now() - it->second;
  metrics_.observe("downtime_ms", (sim_.now() - it->second) / util::kMillisecond);
  down_since_.erase(it);
  ++recoveries_;
  metrics_.count("node_recoveries");
  metrics_.set_gauge("nodes_down", static_cast<double>(down_.size()));
  for (const FaultFn& fn : recovery_subs_) fn(node, sim_.now());
}

void FaultInjector::restore_all() {
  while (!down_.empty()) restore(*down_.begin());
}

double FaultInjector::downtime_node_seconds() const {
  util::TimeNs open = 0;
  for (const auto& [node, since] : down_since_) open += sim_.now() - since;
  return util::to_seconds(downtime_ns_ + open);
}

}  // namespace evolve::fault
