#include "fault/wiring.hpp"

#include <algorithm>

#include "accel/pool.hpp"
#include "dataflow/engine.hpp"
#include "hpc/batch_queue.hpp"
#include "net/fabric.hpp"
#include "orch/lease.hpp"
#include "orch/scheduler.hpp"
#include "serve/service.hpp"
#include "storage/object_store.hpp"
#include "tablet/service.hpp"

namespace evolve::fault {

void connect(FaultInjector& injector, orch::Orchestrator& orch) {
  injector.on_failure([&orch](cluster::NodeId node, util::TimeNs) {
    if (orch.manages(node)) orch.fail_node(node);
  });
  injector.on_recovery([&orch](cluster::NodeId node, util::TimeNs) {
    if (orch.manages(node)) orch.recover_node(node);
  });
}

void connect(FaultInjector& injector, dataflow::DataflowEngine& engine) {
  injector.on_failure([&engine](cluster::NodeId node, util::TimeNs) {
    engine.handle_node_failure(node);
  });
  injector.on_recovery([&engine](cluster::NodeId node, util::TimeNs) {
    engine.handle_node_recovery(node);
  });
}

void connect(FaultInjector& injector, storage::ObjectStore& store) {
  injector.on_failure([&store](cluster::NodeId node, util::TimeNs) {
    store.handle_node_failure(node);
  });
  injector.on_recovery([&store](cluster::NodeId node, util::TimeNs) {
    store.handle_node_recovery(node);
  });
}

void connect(FaultInjector& injector, hpc::BatchQueue& queue,
             std::vector<cluster::NodeId> queue_nodes) {
  auto index_of = [queue_nodes](cluster::NodeId node) {
    const auto it =
        std::find(queue_nodes.begin(), queue_nodes.end(), node);
    return it == queue_nodes.end()
               ? -1
               : static_cast<int>(it - queue_nodes.begin());
  };
  injector.on_failure([&queue, index_of](cluster::NodeId node, util::TimeNs) {
    const int idx = index_of(node);
    if (idx >= 0) queue.handle_node_failure(idx);
  });
  injector.on_recovery([&queue, index_of](cluster::NodeId node, util::TimeNs) {
    const int idx = index_of(node);
    if (idx >= 0) queue.handle_node_recovery(idx);
  });
}

void connect(FaultInjector& injector, orch::LeaseManager& leases) {
  injector.on_failure([&leases](cluster::NodeId node, util::TimeNs) {
    leases.pause(node);
  });
  injector.on_recovery([&leases](cluster::NodeId node, util::TimeNs) {
    leases.resume(node);
  });
}

void connect(orch::LeaseManager& leases, storage::ObjectStore& store) {
  leases.on_expire([&store](cluster::NodeId node, std::int64_t epoch,
                            util::TimeNs) { store.fence_node(node, epoch); });
}

void connect(orch::LeaseManager& leases, serve::Service& service,
             util::TimeNs ramp_window) {
  leases.on_expire([&service](cluster::NodeId node, std::int64_t,
                              util::TimeNs) {
    service.set_node_drained(node, true);
  });
  leases.on_reconnect([&service, ramp_window](cluster::NodeId node,
                                              std::int64_t, util::TimeNs) {
    service.set_node_drained(node, false);
    if (ramp_window > 0) service.ramp_node(node, ramp_window);
  });
}

void connect(FaultInjector& injector, HealthScorer& scorer) {
  injector.on_failure([&scorer](cluster::NodeId node, util::TimeNs) {
    scorer.set_node_down(node, true);
  });
  injector.on_recovery([&scorer](cluster::NodeId node, util::TimeNs) {
    scorer.set_node_down(node, false);
  });
}

void connect(orch::LeaseManager& leases, HealthScorer& scorer) {
  leases.on_expire([&scorer](cluster::NodeId node, std::int64_t,
                             util::TimeNs) {
    scorer.set_node_down(node, true);
  });
  leases.on_reconnect([&scorer](cluster::NodeId node, std::int64_t,
                                util::TimeNs) {
    scorer.set_node_down(node, false);
  });
}

void connect(GrayInjector& gray, dataflow::DataflowEngine& engine) {
  gray.on_slowdown(
      [&engine](cluster::NodeId node, double cpu, double /*accel*/) {
        engine.set_node_slowdown(node, cpu);
      });
}

void connect(GrayInjector& gray, accel::AccelPool& pool) {
  gray.on_slowdown(
      [&pool](cluster::NodeId node, double /*cpu*/, double accel) {
        pool.set_node_slowdown(node, accel);
      });
}

void connect(GrayInjector& gray, net::Fabric& fabric) {
  gray.on_nic([&fabric](cluster::NodeId node,
                        const NicDegradation& nic) {
    for (const net::LinkId link : fabric.topology().host_links(node)) {
      fabric.set_link_capacity_factor(link, nic.capacity_factor());
      fabric.set_link_extra_latency(link, nic.extra_latency);
    }
  });
}

void connect(GrayInjector& gray, storage::ObjectStore& store) {
  gray.on_bitrot([&store](std::uint64_t seed, int replicas) {
    store.corrupt_random_replicas(seed, replicas);
  });
}

void connect(GrayInjector& gray, QuarantineController& controller) {
  gray.on_slowdown([&gray, &controller](cluster::NodeId node, double cpu,
                                        double accel) {
    if (cpu > 1.0 || accel > 1.0) {
      controller.note_degradation_start(node, gray.degraded_since(node));
    }
  });
  gray.on_nic([&gray, &controller](cluster::NodeId node,
                                   const NicDegradation& nic) {
    if (nic.capacity_factor() < 1.0 || nic.extra_latency > 0) {
      controller.note_degradation_start(node, gray.degraded_since(node));
    }
  });
}

void connect(dataflow::DataflowEngine& engine, HealthScorer& scorer) {
  engine.set_task_observer(
      [&scorer](cluster::NodeId node, util::TimeNs service_time) {
        scorer.record(node, service_time);
      });
}

void connect(QuarantineController& controller, orch::Orchestrator& orch) {
  controller.on_change(
      [&orch](cluster::NodeId node, bool quarantined, util::TimeNs) {
        if (!orch.manages(node)) return;
        if (quarantined) {
          orch.quarantine(node);
        } else {
          orch.unquarantine(node);
        }
      });
}

void connect(QuarantineController& controller,
             dataflow::DataflowEngine& engine) {
  controller.on_change(
      [&engine](cluster::NodeId node, bool quarantined, util::TimeNs) {
        engine.set_node_quarantined(node, quarantined);
        // The slow node keeps its running copies (drain), but backups
        // race them on healthy nodes so stragglers stop gating stages.
        if (quarantined) engine.speculate_on_node(node);
      });
}

void connect(GrayInjector& gray, serve::Service& service) {
  gray.on_slowdown(
      [&service](cluster::NodeId node, double cpu, double /*accel*/) {
        service.set_node_slowdown(node, cpu);
      });
}

void connect(QuarantineController& controller, serve::Service& service) {
  controller.on_change(
      [&service](cluster::NodeId node, bool quarantined, util::TimeNs) {
        service.set_node_drained(node, quarantined);
      });
}

void connect(serve::Service& service, HealthScorer& scorer) {
  service.set_exec_observer(
      [&scorer](cluster::NodeId node, util::TimeNs exec) {
        scorer.record(node, exec);
      });
}

void connect(orch::LeaseManager& leases, tablet::TabletService& tablets) {
  leases.on_expire([&tablets](cluster::NodeId node, std::int64_t epoch,
                              util::TimeNs) {
    tablets.handle_lease_expired(node, epoch);
  });
  leases.on_reconnect([&tablets](cluster::NodeId node, std::int64_t epoch,
                                 util::TimeNs) {
    tablets.handle_node_reconnected(node, epoch);
  });
}

void connect(GrayInjector& gray, tablet::TabletService& tablets) {
  gray.on_slowdown(
      [&tablets](cluster::NodeId node, double cpu, double /*accel*/) {
        tablets.set_node_slowdown(node, cpu);
      });
}

void connect(QuarantineController& controller,
             tablet::TabletService& tablets) {
  controller.on_change(
      [&tablets](cluster::NodeId node, bool quarantined, util::TimeNs) {
        tablets.set_node_drained(node, quarantined);
      });
}

}  // namespace evolve::fault
