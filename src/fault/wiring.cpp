#include "fault/wiring.hpp"

#include <algorithm>

#include "dataflow/engine.hpp"
#include "hpc/batch_queue.hpp"
#include "orch/scheduler.hpp"
#include "storage/object_store.hpp"

namespace evolve::fault {

void connect(FaultInjector& injector, orch::Orchestrator& orch) {
  injector.on_failure([&orch](cluster::NodeId node, util::TimeNs) {
    if (orch.manages(node)) orch.fail_node(node);
  });
  injector.on_recovery([&orch](cluster::NodeId node, util::TimeNs) {
    if (orch.manages(node)) orch.recover_node(node);
  });
}

void connect(FaultInjector& injector, dataflow::DataflowEngine& engine) {
  injector.on_failure([&engine](cluster::NodeId node, util::TimeNs) {
    engine.handle_node_failure(node);
  });
  injector.on_recovery([&engine](cluster::NodeId node, util::TimeNs) {
    engine.handle_node_recovery(node);
  });
}

void connect(FaultInjector& injector, storage::ObjectStore& store) {
  injector.on_failure([&store](cluster::NodeId node, util::TimeNs) {
    store.handle_node_failure(node);
  });
  injector.on_recovery([&store](cluster::NodeId node, util::TimeNs) {
    store.handle_node_recovery(node);
  });
}

void connect(FaultInjector& injector, hpc::BatchQueue& queue,
             std::vector<cluster::NodeId> queue_nodes) {
  auto index_of = [queue_nodes](cluster::NodeId node) {
    const auto it =
        std::find(queue_nodes.begin(), queue_nodes.end(), node);
    return it == queue_nodes.end()
               ? -1
               : static_cast<int>(it - queue_nodes.begin());
  };
  injector.on_failure([&queue, index_of](cluster::NodeId node, util::TimeNs) {
    const int idx = index_of(node);
    if (idx >= 0) queue.handle_node_failure(idx);
  });
  injector.on_recovery([&queue, index_of](cluster::NodeId node, util::TimeNs) {
    const int idx = index_of(node);
    if (idx >= 0) queue.handle_node_recovery(idx);
  });
}

}  // namespace evolve::fault
