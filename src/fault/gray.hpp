// Gray-failure injection: degradation instead of death.
//
// Where the FaultInjector models crash-stop (a node is down or up), the
// GrayInjector models the partial failures that dominate real converged
// clusters: nodes that run slow (CPU and/or accelerator), NICs that lose
// bandwidth, add latency, or drop packets, and storage that silently
// returns wrong bytes. Like the FaultInjector it knows nothing about the
// layers above: subscribers (see fault/wiring.hpp) translate a
// degradation event into engine slowdown factors, fabric link capacity
// factors, or object-store corruption. Every degradation interval emits a
// `fault.degrade` trace span so critical-path attribution can show where
// mitigation paid off.
//
// Overlapping degradations on one node coalesce the same way overlapping
// outages do: the strongest (max) factor wins while interval spans
// overlap, and the clear fires only when the last interval ends.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::fault {

/// One NIC's degradation. `bandwidth_factor` scales nominal link
/// capacity; `loss` models retransmission goodput loss (effective
/// capacity = nominal * bandwidth_factor * (1 - loss)); `extra_latency`
/// is added one-way to new transfers crossing the NIC.
struct NicDegradation {
  double bandwidth_factor = 1.0;  // (0, 1]: fraction of nominal bandwidth
  double loss = 0.0;              // [0, 1): packet-loss goodput penalty
  util::TimeNs extra_latency = 0;

  double capacity_factor() const { return bandwidth_factor * (1.0 - loss); }
};

class GrayInjector {
 public:
  /// node, cpu slowdown (>= 1, 1 = healthy), accel slowdown (>= 1).
  using SlowdownFn =
      std::function<void(cluster::NodeId, double cpu, double accel)>;
  /// node, degradation ({} = healthy).
  using NicFn = std::function<void(cluster::NodeId, const NicDegradation&)>;
  /// Seeded bit-rot event: corrupt `replicas` stored replicas.
  using BitrotFn = std::function<void(std::uint64_t seed, int replicas)>;

  explicit GrayInjector(sim::Simulation& sim) : sim_(sim) {}
  GrayInjector(const GrayInjector&) = delete;
  GrayInjector& operator=(const GrayInjector&) = delete;

  void on_slowdown(SlowdownFn fn) { slowdown_subs_.push_back(std::move(fn)); }
  void on_nic(NicFn fn) { nic_subs_.push_back(std::move(fn)); }
  void on_bitrot(BitrotFn fn) { bitrot_subs_.push_back(std::move(fn)); }

  /// Node runs `cpu_factor`x slower (its accelerators `accel_factor`x)
  /// from `at` until `at + duration`, then returns to healthy. Factors
  /// must be >= 1.
  void schedule_slow_node(cluster::NodeId node, double cpu_factor,
                          double accel_factor, util::TimeNs at,
                          util::TimeNs duration);

  /// Node's NIC degrades from `at` until `at + duration`.
  void schedule_nic_degradation(cluster::NodeId node, NicDegradation nic,
                                util::TimeNs at, util::TimeNs duration);

  /// At `at`, corrupt `replicas` randomly chosen stored replicas
  /// (seeded; the subscriber owns replica selection).
  void schedule_bitrot(util::TimeNs at, std::uint64_t seed, int replicas);

  bool is_slowed(cluster::NodeId node) const {
    return slow_until_.count(node) != 0;
  }
  bool is_nic_degraded(cluster::NodeId node) const {
    return nic_until_.count(node) != 0;
  }

  std::int64_t degradations_injected() const { return degradations_; }
  std::int64_t bitrot_events() const { return bitrot_events_; }

  /// When the node degraded (slow or NIC), or -1 when healthy. The
  /// quarantine controller uses this for time-to-quarantine accounting.
  util::TimeNs degraded_since(cluster::NodeId node) const;

  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

 private:
  struct Active {
    util::TimeNs until = 0;
    util::TimeNs since = 0;
    double cpu = 1.0;    // slowdown use
    double accel = 1.0;  // slowdown use
    NicDegradation nic;  // NIC use
    trace::SpanId span = trace::kNoSpan;
  };

  void apply_slowdown(cluster::NodeId node, double cpu, double accel,
                      util::TimeNs until);
  void clear_slowdown(cluster::NodeId node, util::TimeNs end);
  void apply_nic(cluster::NodeId node, const NicDegradation& nic,
                 util::TimeNs until);
  void clear_nic(cluster::NodeId node, util::TimeNs end);

  sim::Simulation& sim_;
  std::vector<SlowdownFn> slowdown_subs_;
  std::vector<NicFn> nic_subs_;
  std::vector<BitrotFn> bitrot_subs_;
  std::map<cluster::NodeId, Active> slow_until_;
  std::map<cluster::NodeId, Active> nic_until_;
  std::int64_t degradations_ = 0;
  std::int64_t bitrot_events_ = 0;
  trace::Tracer* tracer_ = nullptr;
  metrics::Registry metrics_;
};

}  // namespace evolve::fault
