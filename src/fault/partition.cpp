#include "fault/partition.hpp"

#include <stdexcept>
#include <utility>

namespace evolve::fault {

PartitionInjector::PartitionInjector(sim::Simulation& sim, net::Fabric& fabric,
                                     PartitionInjectorConfig config)
    : sim_(sim), fabric_(fabric), config_(config), rng_(config.seed) {}

PartitionId PartitionInjector::split(
    const std::vector<std::vector<cluster::NodeId>>& sides) {
  if (sides.size() < 2) {
    throw std::invalid_argument("split needs at least two sides");
  }
  Edict e;
  e.labels.assign(static_cast<std::size_t>(fabric_.topology().host_count()), 0);
  for (std::size_t s = 0; s < sides.size(); ++s) {
    for (const cluster::NodeId node : sides[s]) {
      e.labels.at(static_cast<std::size_t>(node)) = static_cast<int>(s) + 1;
    }
  }
  return install(std::move(e));
}

PartitionId PartitionInjector::isolate(
    const std::vector<cluster::NodeId>& nodes) {
  if (nodes.empty()) throw std::invalid_argument("isolate: no nodes");
  Edict e;
  // The complement gets its own side so isolated ↔ rest blocks both ways
  // while traffic inside each side keeps flowing.
  e.labels.assign(static_cast<std::size_t>(fabric_.topology().host_count()), 2);
  for (const cluster::NodeId node : nodes) {
    e.labels.at(static_cast<std::size_t>(node)) = 1;
  }
  return install(std::move(e));
}

PartitionId PartitionInjector::isolate_rack(int rack) {
  const net::Topology& topo = fabric_.topology();
  if (rack < 0 || rack >= topo.rack_count()) {
    throw std::invalid_argument("isolate_rack: no such rack");
  }
  std::vector<cluster::NodeId> nodes;
  for (cluster::NodeId h = 0; h < topo.host_count(); ++h) {
    if (topo.rack_of(h) == rack) nodes.push_back(h);
  }
  if (nodes.empty()) throw std::invalid_argument("isolate_rack: empty rack");
  return isolate(nodes);
}

PartitionId PartitionInjector::asymmetric(
    const std::vector<cluster::NodeId>& from,
    const std::vector<cluster::NodeId>& to) {
  if (from.empty() || to.empty()) {
    throw std::invalid_argument("asymmetric partition: empty side");
  }
  Edict e;
  e.asymmetric = true;
  e.labels.assign(static_cast<std::size_t>(fabric_.topology().host_count()), 0);
  for (const cluster::NodeId node : from) {
    e.labels.at(static_cast<std::size_t>(node)) |= 1;
  }
  for (const cluster::NodeId node : to) {
    e.labels.at(static_cast<std::size_t>(node)) |= 2;
  }
  return install(std::move(e));
}

void PartitionInjector::heal(PartitionId id) {
  const auto it = edicts_.find(id);
  if (it == edicts_.end()) return;
  edicts_.erase(it);
  ++heals_;
  if (edicts_.empty()) {
    partition_ns_ += sim_.now() - any_since_;
  }
  rebuild();
  for (const PartitionFn& fn : heal_subs_) fn(sim_.now());
}

void PartitionInjector::heal_all() {
  while (!edicts_.empty()) heal(edicts_.begin()->first);
}

void PartitionInjector::schedule_split(
    std::vector<std::vector<cluster::NodeId>> sides, util::TimeNs at,
    util::TimeNs duration) {
  if (duration <= 0) throw std::invalid_argument("partition duration <= 0");
  sim_.at(at, [this, sides = std::move(sides), duration] {
    const PartitionId id = split(sides);
    sim_.after(duration, [this, id] { heal(id); });
  });
}

void PartitionInjector::schedule_rack_isolation(int rack, util::TimeNs at,
                                                util::TimeNs duration) {
  if (duration <= 0) throw std::invalid_argument("partition duration <= 0");
  sim_.at(at, [this, rack, duration] {
    const PartitionId id = isolate_rack(rack);
    sim_.after(duration, [this, id] { heal(id); });
  });
}

void PartitionInjector::schedule_asymmetric(std::vector<cluster::NodeId> from,
                                            std::vector<cluster::NodeId> to,
                                            util::TimeNs at,
                                            util::TimeNs duration) {
  if (duration <= 0) throw std::invalid_argument("partition duration <= 0");
  sim_.at(at, [this, from = std::move(from), to = std::move(to), duration] {
    const PartitionId id = asymmetric(from, to);
    sim_.after(duration, [this, id] { heal(id); });
  });
}

void PartitionInjector::random_partitions(double mtbp_s,
                                          double mean_duration_s,
                                          util::TimeNs until) {
  if (mtbp_s <= 0 || mean_duration_s <= 0) {
    throw std::invalid_argument("MTBP and mean duration must be > 0");
  }
  processes_.push_back(
      RandomProcess{mtbp_s, mean_duration_s, until, rng_.fork()});
  arm_random(processes_.size() - 1);
}

void PartitionInjector::arm_random(std::size_t process) {
  RandomProcess& p = processes_[process];
  const auto gap =
      static_cast<util::TimeNs>(p.rng.exponential(1.0 / p.mtbp_s) * 1e9);
  const util::TimeNs when = sim_.now() + gap;
  if (when > p.until) return;  // process expires: no more partitions start
  sim_.at(when, [this, process] {
    RandomProcess& rp = processes_[process];
    const int racks = fabric_.topology().rack_count();
    const int rack = static_cast<int>(rp.rng.uniform_int(0, racks - 1));
    const auto duration = static_cast<util::TimeNs>(
        rp.rng.exponential(1.0 / rp.mean_duration_s) * 1e9);
    const PartitionId id = isolate_rack(rack);
    sim_.after(std::max<util::TimeNs>(duration, 1), [this, id] { heal(id); });
    arm_random(process);
  });
}

double PartitionInjector::partition_seconds() const {
  util::TimeNs total = partition_ns_;
  if (!edicts_.empty()) total += sim_.now() - any_since_;
  return util::to_seconds(total);
}

PartitionId PartitionInjector::install(Edict edict) {
  const PartitionId id = next_id_++;
  if (edicts_.empty()) any_since_ = sim_.now();
  edicts_.emplace(id, std::move(edict));
  ++partitions_injected_;
  rebuild();
  for (const PartitionFn& fn : partition_subs_) fn(sim_.now());
  return id;
}

bool PartitionInjector::edict_blocks(const Edict& e, int from_label,
                                     int to_label) {
  if (e.asymmetric) return (from_label & 1) != 0 && (to_label & 2) != 0;
  return from_label != to_label && from_label != 0 && to_label != 0;
}

void PartitionInjector::rebuild() {
  if (edicts_.empty()) {
    fabric_.clear_partitions();
    return;
  }
  const auto hosts =
      static_cast<std::size_t>(fabric_.topology().host_count());
  // A host's reachability class is its label signature across the active
  // edicts (edict-id order, so the classes are deterministic).
  std::vector<std::vector<int>> sig(hosts);
  for (std::size_t h = 0; h < hosts; ++h) sig[h].reserve(edicts_.size());
  for (const auto& [id, e] : edicts_) {
    for (std::size_t h = 0; h < hosts; ++h) sig[h].push_back(e.labels[h]);
  }
  std::map<std::vector<int>, int> class_of;
  std::vector<int> host_group(hosts, 0);
  std::vector<const std::vector<int>*> class_sig;
  for (std::size_t h = 0; h < hosts; ++h) {
    const auto [it, inserted] =
        class_of.emplace(sig[h], static_cast<int>(class_sig.size()));
    if (inserted) class_sig.push_back(&it->first);
    host_group[h] = it->second;
  }
  const std::size_t g = class_sig.size();
  std::vector<std::vector<char>> blocked(g, std::vector<char>(g, 0));
  std::size_t ei = 0;
  for (const auto& [id, e] : edicts_) {
    // Same-class pairs are checked too: an asymmetric edict can label one
    // host with both the from and to bits, blocking traffic between two
    // distinct hosts of the same class (loopback is exempt in the fabric).
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = 0; b < g; ++b) {
        if (blocked[a][b]) continue;
        if (edict_blocks(e, (*class_sig[a])[ei], (*class_sig[b])[ei])) {
          blocked[a][b] = 1;
        }
      }
    }
    ++ei;
  }
  fabric_.set_reachability(std::move(host_group), std::move(blocked));
}

}  // namespace evolve::fault
