#include "fault/health.hpp"

#include <algorithm>
#include <string>

#include "util/backoff.hpp"

namespace evolve::fault {

// ---------------------------------------------------------------------------
// HealthScorer
// ---------------------------------------------------------------------------

void HealthScorer::record(cluster::NodeId node, util::TimeNs service_time) {
  NodeState& state = nodes_[node];
  const auto sample = static_cast<double>(service_time);
  state.ewma = state.samples == 0
                   ? sample
                   : config_.ewma_alpha * sample +
                         (1.0 - config_.ewma_alpha) * state.ewma;
  ++state.samples;
  metrics_.observe("service_time_ms",
                   static_cast<std::int64_t>(service_time / util::kMillisecond));

  const double median = peer_median(node);
  if (median <= 0.0) return;
  const double ratio = state.ewma / median;
  metrics_.set_gauge("score_node_" + std::to_string(node), ratio);
  if (!state.flagged && state.samples >= config_.min_samples &&
      ratio > config_.flag_ratio) {
    state.flagged = true;
    ++flags_;
    metrics_.count("nodes_flagged");
    for (const TransitionFn& fn : flag_subs_) fn(node, sim_.now());
  } else if (state.flagged && ratio < config_.clear_ratio) {
    state.flagged = false;
    ++clears_;
    metrics_.count("nodes_cleared");
    for (const TransitionFn& fn : clear_subs_) fn(node, sim_.now());
  }
}

double HealthScorer::peer_median(cluster::NodeId node) const {
  std::vector<double> peers;
  peers.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) {
    if (id == node || state.samples < config_.min_samples) continue;
    if (down_.count(id) != 0) continue;  // dead peers skew the baseline
    peers.push_back(state.ewma);
  }
  if (static_cast<int>(peers.size()) < config_.min_peers) return 0.0;
  // Median of the lower-middle element for even sizes: deterministic and
  // slightly conservative (a larger median flags fewer nodes).
  const std::size_t mid = (peers.size() - 1) / 2;
  std::nth_element(peers.begin(), peers.begin() + static_cast<std::ptrdiff_t>(mid),
                   peers.end());
  return peers[mid];
}

double HealthScorer::score(cluster::NodeId node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.samples < config_.min_samples) {
    return 0.0;
  }
  const double median = peer_median(node);
  return median <= 0.0 ? 0.0 : it->second.ewma / median;
}

bool HealthScorer::flagged(cluster::NodeId node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.flagged;
}

int HealthScorer::samples(cluster::NodeId node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.samples;
}

void HealthScorer::reset_node(cluster::NodeId node) { nodes_.erase(node); }

void HealthScorer::set_node_down(cluster::NodeId node, bool down) {
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

// ---------------------------------------------------------------------------
// QuarantineController
// ---------------------------------------------------------------------------

QuarantineController::QuarantineController(sim::Simulation& sim,
                                           HealthScorer& scorer,
                                           QuarantineConfig config)
    : sim_(sim), scorer_(scorer), config_(config) {
  scorer_.on_flag([this](cluster::NodeId node, util::TimeNs) {
    quarantine(node);
  });
  scorer_.on_clear([this](cluster::NodeId node, util::TimeNs) {
    // Draining work sped back up before the probe: release early and
    // forget the re-quarantine streak — the node proved itself healthy.
    if (is_quarantined(node)) {
      requarantine_streak_.erase(node);
      release(node, /*via_probe=*/false);
    }
  });
}

void QuarantineController::quarantine(cluster::NodeId node) {
  if (is_quarantined(node)) return;
  State& state = quarantined_[node];
  state.consecutive = ++requarantine_streak_[node];
  ++quarantines_;
  metrics_.count("quarantines");
  metrics_.set_gauge("quarantined_nodes",
                     static_cast<double>(quarantined_.size()));
  const auto degraded = degraded_since_.find(node);
  if (degraded != degraded_since_.end()) {
    const double ttq_ms = util::to_millis(sim_.now() - degraded->second);
    ttq_total_ms_ += ttq_ms;
    ++ttq_count_;
    metrics_.observe("time_to_quarantine_ms",
                     static_cast<std::int64_t>(ttq_ms));
    degraded_since_.erase(degraded);  // charge each degradation once
  }
  if (tracer_) {
    state.span = tracer_->begin(trace::Layer::kScheduler, "fault.quarantine",
                                trace::kNoSpan);
    tracer_->annotate(state.span, "node", std::to_string(node));
    tracer_->annotate(state.span, "attempt",
                      std::to_string(state.consecutive));
  }
  for (const ChangeFn& fn : change_subs_) fn(node, true, sim_.now());

  // Probe back in after an exponentially backed-off delay: the node
  // rejoins with a clean score, and fresh samples re-decide.
  const util::TimeNs delay = std::min(
      util::saturating_backoff(config_.probe_delay, state.consecutive),
      config_.probe_delay_cap);
  state.probe_pending = true;
  state.probe_event = sim_.after(delay, [this, node] {
    const auto it = quarantined_.find(node);
    if (it == quarantined_.end()) return;
    it->second.probe_pending = false;
    ++probes_;
    metrics_.count("probes");
    scorer_.reset_node(node);
    release(node, /*via_probe=*/true);
  });
}

void QuarantineController::release(cluster::NodeId node, bool via_probe) {
  const auto it = quarantined_.find(node);
  if (it == quarantined_.end()) return;
  if (!via_probe && it->second.probe_pending) {
    sim_.cancel(it->second.probe_event);
  }
  if (tracer_) tracer_->end(it->second.span);
  quarantined_.erase(it);
  metrics_.set_gauge("quarantined_nodes",
                     static_cast<double>(quarantined_.size()));
  for (const ChangeFn& fn : change_subs_) fn(node, false, sim_.now());
}

void QuarantineController::note_degradation_start(cluster::NodeId node,
                                                  util::TimeNs at) {
  degraded_since_.emplace(node, at);  // keep the earliest start
}

double QuarantineController::mean_time_to_quarantine_ms() const {
  return ttq_count_ == 0 ? -1.0
                         : ttq_total_ms_ / static_cast<double>(ttq_count_);
}

}  // namespace evolve::fault
