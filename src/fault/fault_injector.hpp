// Cluster-wide fault injection driven by the shared simulation clock.
//
// A FaultInjector kills and restores whole nodes, either on a
// deterministic schedule or through a seeded MTBF/MTTR renewal process
// per node class. It knows nothing about the layers above it: subscribers
// (orchestrator, dataflow engine, object store, batch queue — see
// fault/wiring.hpp) register callbacks and translate a node death into
// their own recovery actions, so one crash propagates coherently through
// every subsystem that shares the clock.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::fault {

struct FaultInjectorConfig {
  std::uint64_t seed = 1;  // drives every MTBF/MTTR process
};

class FaultInjector {
 public:
  /// Called with the node and the simulated time of the transition.
  using FaultFn = std::function<void(cluster::NodeId, util::TimeNs)>;

  explicit FaultInjector(sim::Simulation& sim, FaultInjectorConfig config = {})
      : sim_(sim), config_(config), rng_(config.seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a subscriber; callbacks fire in registration order.
  void on_failure(FaultFn fn) { failure_subs_.push_back(std::move(fn)); }
  void on_recovery(FaultFn fn) { recovery_subs_.push_back(std::move(fn)); }

  // -- Deterministic schedules ---------------------------------------
  void schedule_failure(cluster::NodeId node, util::TimeNs at);
  void schedule_recovery(cluster::NodeId node, util::TimeNs at);
  /// Failure at `at`, recovery at `at + downtime`. Overlapping outages
  /// on one node coalesce: the node stays down until the latest
  /// scheduled recovery, subscribers fire once per actual transition,
  /// and downtime accounting covers the union of the intervals.
  void schedule_outage(cluster::NodeId node, util::TimeNs at,
                       util::TimeNs downtime);

  // -- Correlated failures -------------------------------------------
  /// Rack-scoped outage: the rack's ToR switch dies, so every host in
  /// `rack` fails together at `at` and recovers together at
  /// `at + downtime`. Per-node overlap coalescing applies as in
  /// schedule_outage. This is the failure mode that distinguishes
  /// failure-domain-aware placement from rack-oblivious placement: a
  /// stripe with more than m fragments in one rack dies with it.
  void schedule_rack_outage(const cluster::Cluster& cluster, int rack,
                            util::TimeNs at, util::TimeNs downtime);
  std::int64_t rack_outages_scheduled() const { return rack_outages_; }

  // -- Seeded random process -----------------------------------------
  /// Starts an independent MTBF/MTTR renewal process on each node:
  /// exponential time-to-failure with mean `mtbf_s` seconds, exponential
  /// repair with mean `mttr_s` seconds. No failures are *initiated* after
  /// `until`, so the fabric can drain (a node down at `until` still
  /// recovers). Deterministic for a given config seed.
  void random_process(const std::vector<cluster::NodeId>& nodes,
                      double mtbf_s, double mttr_s, util::TimeNs until);

  // -- Immediate transitions (also used by the schedulers above) ------
  /// Kills a node now. No-op if it is already down.
  void kill(cluster::NodeId node);
  /// Restores a node now. No-op if it is up.
  void restore(cluster::NodeId node);
  /// Restores every downed node now (end-of-experiment drain).
  void restore_all();

  bool is_down(cluster::NodeId node) const { return down_.count(node) != 0; }
  int down_count() const { return static_cast<int>(down_.size()); }

  std::int64_t failures_injected() const { return failures_; }
  std::int64_t recoveries() const { return recoveries_; }
  /// Accumulated node-seconds of downtime (downed intervals only; open
  /// intervals are charged up to `now`).
  double downtime_node_seconds() const;

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

 private:
  struct Process {
    cluster::NodeId node;
    double mtbf_s;
    double mttr_s;
    util::TimeNs until;
    util::Rng rng;
  };

  void arm_failure(std::size_t process);
  void arm_recovery(std::size_t process);

  sim::Simulation& sim_;
  FaultInjectorConfig config_;
  util::Rng rng_;
  std::vector<FaultFn> failure_subs_;
  std::vector<FaultFn> recovery_subs_;
  std::vector<Process> processes_;
  std::set<cluster::NodeId> down_;
  std::map<cluster::NodeId, util::TimeNs> down_since_;
  // Latest scheduled-outage end per node; an outage recovery only
  // restores once the hold has elapsed, so overlapping outages coalesce.
  std::map<cluster::NodeId, util::TimeNs> outage_hold_until_;
  std::int64_t failures_ = 0;
  std::int64_t recoveries_ = 0;
  std::int64_t rack_outages_ = 0;
  util::TimeNs downtime_ns_ = 0;
  metrics::Registry metrics_;
};

}  // namespace evolve::fault
