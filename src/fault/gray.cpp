#include "fault/gray.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::fault {

void GrayInjector::schedule_slow_node(cluster::NodeId node, double cpu_factor,
                                      double accel_factor, util::TimeNs at,
                                      util::TimeNs duration) {
  if (cpu_factor < 1.0 || accel_factor < 1.0) {
    throw std::invalid_argument("slowdown factors must be >= 1");
  }
  if (duration <= 0) throw std::invalid_argument("slowdown needs duration > 0");
  const util::TimeNs end = at + duration;
  sim_.at(at, [this, node, cpu_factor, accel_factor, end] {
    apply_slowdown(node, cpu_factor, accel_factor, end);
  });
  sim_.at(end, [this, node, end] { clear_slowdown(node, end); });
}

void GrayInjector::apply_slowdown(cluster::NodeId node, double cpu,
                                  double accel, util::TimeNs until) {
  Active& a = slow_until_[node];
  const bool fresh = a.until == 0;
  if (fresh) {
    a.since = sim_.now();
    ++degradations_;
    metrics_.count("slow_node_degradations");
    if (tracer_) {
      a.span = tracer_->begin(trace::Layer::kDataflow, "fault.degrade",
                              trace::kNoSpan);
      tracer_->annotate(a.span, "kind", "slow_node");
      tracer_->annotate(a.span, "node", std::to_string(node));
      tracer_->annotate(a.span, "cpu_factor", std::to_string(cpu));
    }
  }
  // Overlapping slowdowns: the strongest factor wins, the longest holds.
  a.cpu = std::max(a.cpu, cpu);
  a.accel = std::max(a.accel, accel);
  a.until = std::max(a.until, until);
  metrics_.set_gauge("slowed_nodes", static_cast<double>(slow_until_.size()));
  for (const SlowdownFn& fn : slowdown_subs_) fn(node, a.cpu, a.accel);
}

void GrayInjector::clear_slowdown(cluster::NodeId node, util::TimeNs end) {
  const auto it = slow_until_.find(node);
  if (it == slow_until_.end() || it->second.until > end) return;
  if (tracer_) tracer_->end(it->second.span);
  slow_until_.erase(it);
  metrics_.set_gauge("slowed_nodes", static_cast<double>(slow_until_.size()));
  for (const SlowdownFn& fn : slowdown_subs_) fn(node, 1.0, 1.0);
}

void GrayInjector::schedule_nic_degradation(cluster::NodeId node,
                                            NicDegradation nic, util::TimeNs at,
                                            util::TimeNs duration) {
  if (!(nic.bandwidth_factor > 0.0) || nic.bandwidth_factor > 1.0) {
    throw std::invalid_argument("bandwidth factor must be in (0, 1]");
  }
  if (nic.loss < 0.0 || nic.loss >= 1.0) {
    throw std::invalid_argument("loss must be in [0, 1)");
  }
  if (nic.extra_latency < 0) {
    throw std::invalid_argument("extra latency must be >= 0");
  }
  if (duration <= 0) throw std::invalid_argument("nic needs duration > 0");
  const util::TimeNs end = at + duration;
  sim_.at(at, [this, node, nic, end] { apply_nic(node, nic, end); });
  sim_.at(end, [this, node, end] { clear_nic(node, end); });
}

void GrayInjector::apply_nic(cluster::NodeId node, const NicDegradation& nic,
                             util::TimeNs until) {
  Active& a = nic_until_[node];
  const bool fresh = a.until == 0;
  if (fresh) {
    a.since = sim_.now();
    a.nic = nic;
    ++degradations_;
    metrics_.count("nic_degradations");
    if (tracer_) {
      a.span = tracer_->begin(trace::Layer::kNetwork, "fault.degrade",
                              trace::kNoSpan);
      tracer_->annotate(a.span, "kind", "nic");
      tracer_->annotate(a.span, "node", std::to_string(node));
      tracer_->annotate(a.span, "loss", std::to_string(nic.loss));
    }
  } else {
    // Strongest degradation wins across overlapping intervals.
    a.nic.bandwidth_factor = std::min(a.nic.bandwidth_factor,
                                      nic.bandwidth_factor);
    a.nic.loss = std::max(a.nic.loss, nic.loss);
    a.nic.extra_latency = std::max(a.nic.extra_latency, nic.extra_latency);
  }
  a.until = std::max(a.until, until);
  metrics_.set_gauge("nic_degraded_nodes",
                     static_cast<double>(nic_until_.size()));
  for (const NicFn& fn : nic_subs_) fn(node, a.nic);
}

void GrayInjector::clear_nic(cluster::NodeId node, util::TimeNs end) {
  const auto it = nic_until_.find(node);
  if (it == nic_until_.end() || it->second.until > end) return;
  if (tracer_) tracer_->end(it->second.span);
  nic_until_.erase(it);
  metrics_.set_gauge("nic_degraded_nodes",
                     static_cast<double>(nic_until_.size()));
  const NicDegradation healthy;
  for (const NicFn& fn : nic_subs_) fn(node, healthy);
}

void GrayInjector::schedule_bitrot(util::TimeNs at, std::uint64_t seed,
                                   int replicas) {
  if (replicas <= 0) throw std::invalid_argument("bitrot needs replicas > 0");
  sim_.at(at, [this, seed, replicas] {
    ++bitrot_events_;
    metrics_.count("bitrot_events");
    metrics_.count("bitrot_replicas", replicas);
    if (tracer_) {
      const trace::SpanId span = tracer_->begin(
          trace::Layer::kStorage, "fault.degrade", trace::kNoSpan);
      tracer_->annotate(span, "kind", "bitrot");
      tracer_->annotate(span, "replicas", std::to_string(replicas));
      tracer_->end(span);
    }
    for (const BitrotFn& fn : bitrot_subs_) fn(seed, replicas);
  });
}

util::TimeNs GrayInjector::degraded_since(cluster::NodeId node) const {
  util::TimeNs since = -1;
  const auto slow = slow_until_.find(node);
  if (slow != slow_until_.end()) since = slow->second.since;
  const auto nic = nic_until_.find(node);
  if (nic != nic_until_.end()) {
    since = since < 0 ? nic->second.since : std::min(since, nic->second.since);
  }
  return since;
}

}  // namespace evolve::fault
