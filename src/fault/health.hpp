// Gray-failure detection: per-node health scoring and quarantine.
//
// The HealthScorer consumes per-node task service times (fed by the
// dataflow engine through fault/wiring.hpp) and keeps an EWMA per node.
// A node's health score is its EWMA divided by the median EWMA of its
// peers; a score above `flag_ratio` flags the node as gray-degraded,
// and hysteresis (`clear_ratio`) prevents flap. Flag/clear transitions
// fire subscriber callbacks.
//
// The QuarantineController turns flags into scheduler quarantine: a
// flagged node stops receiving new pods/tasks (it drains — running work
// finishes), then after a probe delay the controller lifts the
// quarantine and resets the node's score so fresh probe samples decide
// whether it re-flags (re-quarantine with exponentially backed-off probe
// delay) or stays in service. This is the probe-back-in state machine:
//
//   healthy --score > flag_ratio--> quarantined (draining)
//   quarantined --probe_delay elapsed--> probing (back in service, score reset)
//   probing --re-flagged--> quarantined (probe delay doubled, saturating)
//   probing | quarantined --score < clear_ratio--> healthy
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::fault {

struct HealthScorerConfig {
  double ewma_alpha = 0.2;   // weight of the newest sample
  double flag_ratio = 2.0;   // flag when ewma > flag_ratio * peer median
  double clear_ratio = 1.3;  // clear when ewma < clear_ratio * peer median
  int min_samples = 5;       // samples before a node can be flagged
  int min_peers = 2;         // scored peers needed to form a median
};

class HealthScorer {
 public:
  using TransitionFn = std::function<void(cluster::NodeId, util::TimeNs)>;

  explicit HealthScorer(sim::Simulation& sim, HealthScorerConfig config = {})
      : sim_(sim), config_(config) {}
  HealthScorer(const HealthScorer&) = delete;
  HealthScorer& operator=(const HealthScorer&) = delete;

  void on_flag(TransitionFn fn) { flag_subs_.push_back(std::move(fn)); }
  void on_clear(TransitionFn fn) { clear_subs_.push_back(std::move(fn)); }

  /// Records one task service time observed on `node` and re-evaluates
  /// its flag state.
  void record(cluster::NodeId node, util::TimeNs service_time);

  /// node EWMA / peer-median EWMA; 0 while unknown (too few samples or
  /// peers).
  double score(cluster::NodeId node) const;
  bool flagged(cluster::NodeId node) const;
  int samples(cluster::NodeId node) const;

  /// Forgets a node's history and silently clears its flag (no
  /// subscriber callbacks) — the probe path: fresh samples re-decide.
  void reset_node(cluster::NodeId node);

  /// Marks `node` down (crashed or lease-expired): its stale EWMA drops
  /// out of every peer median until it comes back. Without this a dead
  /// node's frozen history skews the median and healthy peers can be
  /// flagged against a baseline that no longer exists.
  void set_node_down(cluster::NodeId node, bool down);
  bool is_node_down(cluster::NodeId node) const {
    return down_.count(node) != 0;
  }

  std::int64_t flags_raised() const { return flags_; }
  std::int64_t flags_cleared() const { return clears_; }

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

 private:
  struct NodeState {
    double ewma = 0.0;
    int samples = 0;
    bool flagged = false;
  };

  /// Median EWMA over scored peers (min_samples reached), excluding
  /// `node`. Returns 0 when fewer than min_peers qualify.
  double peer_median(cluster::NodeId node) const;

  sim::Simulation& sim_;
  HealthScorerConfig config_;
  std::vector<TransitionFn> flag_subs_;
  std::vector<TransitionFn> clear_subs_;
  std::map<cluster::NodeId, NodeState> nodes_;
  std::set<cluster::NodeId> down_;  // excluded from peer medians
  std::int64_t flags_ = 0;
  std::int64_t clears_ = 0;
  metrics::Registry metrics_;
};

struct QuarantineConfig {
  util::TimeNs probe_delay = util::millis(500);  // first probe-back-in delay
  /// Probe delay doubles per consecutive re-quarantine of one node
  /// (saturating), capped here.
  util::TimeNs probe_delay_cap = util::seconds(30);
};

class QuarantineController {
 public:
  /// node, quarantined (true = drained out, false = probed back in).
  using ChangeFn = std::function<void(cluster::NodeId, bool, util::TimeNs)>;

  QuarantineController(sim::Simulation& sim, HealthScorer& scorer,
                       QuarantineConfig config = {});
  QuarantineController(const QuarantineController&) = delete;
  QuarantineController& operator=(const QuarantineController&) = delete;

  void on_change(ChangeFn fn) { change_subs_.push_back(std::move(fn)); }

  bool is_quarantined(cluster::NodeId node) const {
    return quarantined_.count(node) != 0;
  }
  std::int64_t quarantines() const { return quarantines_; }
  std::int64_t probes() const { return probes_; }

  /// Marks when a node's degradation began (wired from the
  /// GrayInjector); the next quarantine of that node records
  /// now - start as time-to-quarantine.
  void note_degradation_start(cluster::NodeId node, util::TimeNs at);

  /// Milliseconds from degradation start to first quarantine, averaged
  /// over quarantines with a known start (-1 when none recorded).
  double mean_time_to_quarantine_ms() const;

  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

 private:
  struct State {
    int consecutive = 0;  // re-quarantines since last clean clear
    sim::EventId probe_event = 0;
    bool probe_pending = false;
    trace::SpanId span = trace::kNoSpan;
  };

  void quarantine(cluster::NodeId node);
  void release(cluster::NodeId node, bool via_probe);

  sim::Simulation& sim_;
  HealthScorer& scorer_;
  QuarantineConfig config_;
  std::vector<ChangeFn> change_subs_;
  std::map<cluster::NodeId, State> quarantined_;
  std::map<cluster::NodeId, int> requarantine_streak_;
  std::map<cluster::NodeId, util::TimeNs> degraded_since_;
  std::int64_t quarantines_ = 0;
  std::int64_t probes_ = 0;
  double ttq_total_ms_ = 0;
  std::int64_t ttq_count_ = 0;
  trace::Tracer* tracer_ = nullptr;
  metrics::Registry metrics_;
};

}  // namespace evolve::fault
