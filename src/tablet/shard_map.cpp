#include "tablet/shard_map.hpp"

#include <stdexcept>

namespace evolve::tablet {

ShardMap::ShardMap(std::uint64_t keyspace, cluster::NodeId node)
    : keyspace_(keyspace) {
  if (keyspace == 0) throw std::invalid_argument("shard map: empty key space");
  ShardInfo root;
  root.id = next_id_++;
  root.start = 0;
  root.end = keyspace;
  root.node = node;
  by_start_[0] = root;
  start_of_[root.id] = 0;
}

const ShardInfo& ShardMap::shard_for(std::uint64_t key) const {
  if (key >= keyspace_) key = keyspace_ - 1;
  auto it = by_start_.upper_bound(key);
  --it;  // the root shard starts at 0, so this is always valid
  return it->second;
}

const ShardInfo& ShardMap::shard(ShardId id) const {
  auto it = start_of_.find(id);
  if (it == start_of_.end()) throw std::invalid_argument("unknown shard");
  return by_start_.at(it->second);
}

ShardInfo& ShardMap::info(ShardId id) {
  auto it = start_of_.find(id);
  if (it == start_of_.end()) throw std::invalid_argument("unknown shard");
  return by_start_.at(it->second);
}

ShardId ShardMap::split(ShardId id, std::uint64_t at) {
  ShardInfo& left = info(id);
  if (at <= left.start || at >= left.end) {
    throw std::invalid_argument("split point outside the shard");
  }
  ShardInfo right;
  right.id = next_id_++;
  right.start = at;
  right.end = left.end;
  right.node = left.node;
  left.end = at;
  by_start_[at] = right;
  start_of_[right.id] = at;
  ++epoch_;
  ++splits_;
  return right.id;
}

void ShardMap::merge(ShardId left, ShardId right) {
  ShardInfo& l = info(left);
  ShardInfo& r = info(right);
  if (l.end != r.start) {
    throw std::invalid_argument("merge: shards are not range-adjacent");
  }
  l.end = r.end;
  by_start_.erase(r.start);
  start_of_.erase(right);
  ++epoch_;
  ++merges_;
}

void ShardMap::move(ShardId id, cluster::NodeId node) {
  info(id).node = node;
  ++epoch_;
  ++moves_;
}

ShardId ShardMap::right_neighbor(ShardId id) const {
  const ShardInfo& s = shard(id);
  auto it = by_start_.find(s.start);
  ++it;
  return it == by_start_.end() ? kInvalidShard : it->second.id;
}

std::vector<ShardInfo> ShardMap::shards() const {
  std::vector<ShardInfo> out;
  out.reserve(by_start_.size());
  for (const auto& [start, info] : by_start_) out.push_back(info);
  return out;
}

std::vector<ShardId> ShardMap::shards_on(cluster::NodeId node) const {
  std::vector<ShardId> out;
  for (const auto& [start, info] : by_start_) {
    if (info.node == node) out.push_back(info.id);
  }
  return out;
}

}  // namespace evolve::tablet
