#include "tablet/service.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::tablet {

const char* to_string(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kNotFound:
      return "not_found";
    case OpStatus::kWrongShard:
      return "wrong_shard";
    case OpStatus::kQueueFull:
      return "queue_full";
    case OpStatus::kUnavailable:
      return "unavailable";
    case OpStatus::kFenced:
      return "fenced";
  }
  return "unknown";
}

TabletService::TabletService(sim::Simulation& sim, net::Fabric& fabric,
                             storage::ObjectStore& store,
                             std::vector<cluster::NodeId> nodes,
                             TabletConfig config)
    : sim_(sim),
      fabric_(fabric),
      store_(store),
      nodes_list_(std::move(nodes)),
      config_(std::move(config)),
      map_(config_.keyspace, nodes_list_.empty() ? cluster::kInvalidNode
                                                 : nodes_list_.front()) {
  if (nodes_list_.empty()) {
    throw std::invalid_argument("tablet service needs at least one node");
  }
  if (config_.initial_shards < 1) {
    throw std::invalid_argument("initial_shards must be >= 1");
  }
  store_.create_bucket(config_.bucket);
  for (cluster::NodeId n : nodes_list_) nodes_[n];  // default NodeState
  // Carve the key space into even initial shards, spread round-robin.
  for (int i = 1; i < config_.initial_shards; ++i) {
    const auto shards = map_.shards();
    const ShardInfo& last = shards.back();
    const std::uint64_t at =
        config_.keyspace * static_cast<std::uint64_t>(i) /
        static_cast<std::uint64_t>(config_.initial_shards);
    if (at > last.start && at < last.end) map_.split(last.id, at);
  }
  const auto shards = map_.shards();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const cluster::NodeId host_node =
        nodes_list_[i % nodes_list_.size()];
    if (shards[i].node != host_node) map_.move(shards[i].id, host_node);
    Tablet t;
    t.id = shards[i].id;
    tablets_[t.id] = std::move(t);
    host(host_node, shards[i].id);
  }
}

TabletService::Tablet& TabletService::tablet(ShardId id) {
  return tablets_.at(id);
}

const TabletService::Tablet& TabletService::tablet(ShardId id) const {
  return tablets_.at(id);
}

TabletService::NodeState& TabletService::node(cluster::NodeId id) {
  return nodes_.at(id);
}

void TabletService::host(cluster::NodeId node_id, ShardId shard) {
  node(node_id).hosted.push_back(shard);
}

void TabletService::unhost(cluster::NodeId node_id, ShardId shard) {
  NodeState& n = node(node_id);
  n.hosted.erase(std::remove(n.hosted.begin(), n.hosted.end(), shard),
                 n.hosted.end());
  if (n.rr >= n.hosted.size()) n.rr = 0;
}

std::string TabletService::gen_object(ShardId shard, std::int64_t gen) const {
  return "t" + std::to_string(shard) + "-g" + std::to_string(gen);
}

// -- Data path ----------------------------------------------------------

void TabletService::submit(cluster::NodeId node_id, OpKind kind,
                           std::uint64_t key, cluster::NodeId client,
                           OpCallback done, trace::SpanId parent) {
  metrics_.count("submits");
  Op op;
  op.kind = kind;
  op.key = key;
  op.client = client;
  op.cb = std::move(done);
  fabric_.transfer(client, node_id, config_.request_bytes,
                   [this, node_id, parent, op = std::move(op)]() mutable {
                     op.span = trace::begin_span(
                         tracer_, trace::Layer::kTablet, "tablet.serve",
                         parent);
                     arrive(node_id, std::move(op));
                   });
}

void TabletService::arrive(cluster::NodeId node_id, Op op) {
  NodeState& n = node(node_id);
  if (!n.serving) {
    respond(node_id, op, OpStatus::kUnavailable, kInvalidShard);
    return;
  }
  const ShardInfo& si = map_.shard_for(op.key);
  if (si.node != node_id) {
    respond(node_id, op, OpStatus::kWrongShard, si.id);
    return;
  }
  Tablet& t = tablet(si.id);
  if (t.moving) {
    respond(node_id, op, OpStatus::kUnavailable, si.id);
    return;
  }
  if (static_cast<int>(t.queue.size()) >= config_.queue_limit) {
    respond(node_id, op, OpStatus::kQueueFull, si.id);
    return;
  }
  if (op.kind == OpKind::kWrite) op.seq = next_seq_++;
  op.queued_at = sim_.now();
  ++t.ops_interval;
  ++t.access[op.key];
  metrics_.observe("queue_depth_at_arrival",
                   static_cast<std::int64_t>(t.queue.size()));
  t.queue.push_back(std::move(op));
  kick(node_id);
}

void TabletService::kick(cluster::NodeId node_id) {
  NodeState& n = node(node_id);
  if (n.busy || !n.serving || n.hosted.empty()) return;
  for (std::size_t i = 0; i < n.hosted.size(); ++i) {
    const std::size_t idx = (n.rr + i) % n.hosted.size();
    Tablet& t = tablet(n.hosted[idx]);
    if (t.moving || t.queue.empty()) continue;
    n.rr = (idx + 1) % n.hosted.size();
    Op op = std::move(t.queue.front());
    t.queue.pop_front();
    n.busy = true;
    metrics_.observe("queue_wait_us",
                     (sim_.now() - op.queued_at) / util::kMicrosecond);
    execute(node_id, t.id, std::move(op));
    return;
  }
}

void TabletService::execute(cluster::NodeId node_id, ShardId shard, Op op) {
  NodeState& n = node(node_id);
  const util::TimeNs base =
      op.kind == OpKind::kRead ? config_.read_cost : config_.write_cost;
  const auto cost = static_cast<util::TimeNs>(
      static_cast<double>(base) * n.slowdown);
  const trace::SpanId exec_span = trace::begin_span(
      tracer_, trace::Layer::kTablet, "tablet.exec", op.span);
  sim_.after(cost, [this, node_id, shard, exec_span,
                    op = std::move(op)]() mutable {
    trace::end_span(tracer_, exec_span);
    NodeState& n = node(node_id);
    n.busy = false;
    if (op.kind == OpKind::kRead) {
      finish_read(node_id, shard, std::move(op));
    } else {
      append_wal(node_id, shard, std::move(op));
    }
    kick(node_id);
  });
}

void TabletService::finish_read(cluster::NodeId node_id, ShardId shard,
                                Op op) {
  if (applied_seq_.count(op.key) == 0) {
    respond(node_id, op, OpStatus::kNotFound, shard);
    return;
  }
  // The shard may have split/merged while the op executed: resolve the
  // tablet that owns the key now.
  const ShardInfo& si = map_.shard_for(op.key);
  Tablet& t = tablet(si.id);
  if (t.memtable.count(op.key) != 0 || t.sealed.count(op.key) != 0 ||
      t.gens.empty()) {
    ++memtable_hits_;
    metrics_.count("memtable_hits");
    respond(node_id, op, OpStatus::kOk, si.id, /*from_memtable=*/true);
    return;
  }
  ++block_reads_;
  metrics_.count("block_reads");
  const trace::SpanId read_span = trace::begin_span(
      tracer_, trace::Layer::kTablet, "tablet.read", op.span);
  trace::ScopedContext tctx(tracer_, read_span);
  store_.read_block(
      node_id, {config_.bucket, t.gens.back().object}, config_.block_bytes,
      [this, node_id, shard = si.id, read_span,
       op = std::move(op)](const storage::GetResult& r) mutable {
        trace::end_span(tracer_, read_span);
        if (!r.found) metrics_.count("gen_read_misses");
        respond(node_id, op, OpStatus::kOk, shard);
      });
}

void TabletService::append_wal(cluster::NodeId node_id, ShardId shard,
                               Op op) {
  NodeState& n = node(node_id);
  PendingWrite w;
  w.key = op.key;
  w.seq = op.seq;
  w.shard = shard;
  w.client = op.client;
  w.span = op.span;
  w.cb = std::move(op.cb);
  n.group.push_back(std::move(w));
  if (!n.group_armed && !n.commit_inflight) {
    n.group_armed = true;
    sim_.after(config_.wal_group_delay,
               [this, node_id] { commit_wal(node_id); });
  }
}

void TabletService::commit_wal(cluster::NodeId node_id) {
  NodeState& n = node(node_id);
  n.group_armed = false;
  if (n.commit_inflight || n.group.empty()) return;
  auto group = std::make_shared<std::vector<PendingWrite>>(
      std::move(n.group));
  n.group.clear();
  util::Bytes bytes = 0;
  for (const PendingWrite& w : *group) {
    (void)w;
    bytes += config_.wal_entry_bytes + config_.value_bytes;
  }
  const storage::ObjectKey wal_key{
      config_.bucket, "wal-n" + std::to_string(node_id) + "-" +
                          std::to_string(n.wal_objects++)};
  const trace::SpanId wal_span = trace::begin_span(
      tracer_, trace::Layer::kTablet, "tablet.wal",
      group->front().span);
  trace::ScopedContext tctx(tracer_, wal_span);
  const bool accepted = store_.put_fenced(
      node_id, n.epoch, wal_key, bytes,
      [this, node_id, group, wal_span] {
        trace::end_span(tracer_, wal_span);
        NodeState& n = node(node_id);
        n.commit_inflight = false;
        ++wal_commits_;
        metrics_.count("wal_commits");
        // Durable: apply in order (idempotent per key), then ack.
        for (PendingWrite& w : *group) {
          apply_write(node_id, w);
          respond_write(node_id, w, OpStatus::kOk);
        }
        if (!n.group.empty() && !n.group_armed) {
          n.group_armed = true;
          sim_.after(config_.wal_group_delay,
                     [this, node_id] { commit_wal(node_id); });
        }
      });
  if (!accepted) {
    // Zombie commit: this server's epoch is stale. Nothing became
    // durable, nothing is applied, and the ops fail un-acked.
    trace::end_span(tracer_, wal_span);
    metrics_.count("wal_commits_fenced");
    for (PendingWrite& w : *group) {
      ++fenced_writes_;
      respond_write(node_id, w, OpStatus::kFenced);
    }
    return;
  }
  n.commit_inflight = true;
}

void TabletService::apply_write(cluster::NodeId node_id,
                                const PendingWrite& w) {
  std::int64_t& applied = applied_seq_[w.key];
  if (w.seq <= applied) {
    // A newer write to this key already landed (a cross-epoch ordering
    // inversion): suppress the stale apply — exactly-once effect.
    ++dup_writes_;
    metrics_.count("stale_applies_suppressed");
    return;
  }
  applied = w.seq;
  ++applied_writes_;
  if (record_applies_) ++apply_counts_[w.seq];
  // Insert into the memtable of whoever owns the key now (the shard may
  // have moved mid-commit; WAL replay delivers the entry there).
  const ShardInfo& si = map_.shard_for(w.key);
  Tablet& t = tablet(si.id);
  t.memtable[w.key] = w.seq;
  t.memtable_bytes += config_.value_bytes;
  if (!t.moving) {
    maybe_flush(si.node, si.id);
    arm_age_flush(si.node, si.id);
  }
}

void TabletService::respond(cluster::NodeId from, const Op& op,
                            OpStatus status, ShardId shard,
                            bool from_memtable) {
  switch (status) {
    case OpStatus::kOk:
      ++ops_ok_;
      break;
    case OpStatus::kNotFound:
      ++not_found_;
      break;
    case OpStatus::kWrongShard:
      ++wrong_shard_;
      break;
    case OpStatus::kQueueFull:
      ++shed_queue_full_;
      break;
    case OpStatus::kUnavailable:
      ++unavailable_;
      break;
    case OpStatus::kFenced:
      ++fenced_writes_;
      break;
  }
  metrics_.count(std::string("op_") + to_string(status));
  OpResult result;
  result.status = status;
  result.shard = shard;
  result.epoch = map_.epoch();
  result.seq = op.seq;
  result.from_memtable = from_memtable;
  const util::Bytes bytes =
      status == OpStatus::kOk && op.kind == OpKind::kRead
          ? config_.response_bytes
          : config_.ack_bytes;
  if (tracer_ && op.span != trace::kNoSpan) {
    tracer_->annotate(op.span, "status", to_string(status));
  }
  trace::end_span(tracer_, op.span);
  deliver(from, op.client, bytes, op.span, result, op.cb);
}

void TabletService::respond_write(cluster::NodeId from, const PendingWrite& w,
                                  OpStatus status) {
  if (status == OpStatus::kOk) ++ops_ok_;
  metrics_.count(std::string("op_") + to_string(status));
  OpResult result;
  result.status = status;
  result.shard = w.shard;
  result.epoch = map_.epoch();
  result.seq = w.seq;
  if (tracer_ && w.span != trace::kNoSpan) {
    tracer_->annotate(w.span, "status", to_string(status));
  }
  trace::end_span(tracer_, w.span);
  deliver(from, w.client, config_.ack_bytes, w.span, result, w.cb);
}

void TabletService::deliver(cluster::NodeId from, cluster::NodeId to,
                            util::Bytes bytes, trace::SpanId /*span*/,
                            OpResult result, OpCallback cb) {
  fabric_.transfer(from, to, bytes,
                   [result, cb = std::move(cb)] { cb(result); });
}

// -- Memtable flush -----------------------------------------------------

void TabletService::maybe_flush(cluster::NodeId node_id, ShardId shard) {
  Tablet& t = tablet(shard);
  if (t.flushing || t.moving) return;
  if (t.memtable_bytes >= config_.flush_bytes) start_flush(node_id, shard);
}

void TabletService::arm_age_flush(cluster::NodeId node_id, ShardId shard) {
  Tablet& t = tablet(shard);
  if (t.age_armed || config_.flush_age <= 0 || t.memtable.empty()) return;
  t.age_armed = true;
  t.age_timer = sim_.after(config_.flush_age, [this, shard] {
    auto it = tablets_.find(shard);
    if (it == tablets_.end()) return;  // merged away
    it->second.age_armed = false;
    if (it->second.flushing || it->second.moving) return;
    if (it->second.memtable_bytes <= 0) return;
    if (!map_.has_shard(shard)) return;
    start_flush(map_.shard(shard).node, shard);
  });
}

void TabletService::cancel_age_flush(Tablet& t) {
  if (!t.age_armed) return;
  sim_.cancel(t.age_timer);
  t.age_armed = false;
}

void TabletService::start_flush(cluster::NodeId node_id, ShardId shard) {
  Tablet& t = tablet(shard);
  if (t.flushing) return;
  t.flushing = true;
  cancel_age_flush(t);
  // Seal the memtable: reads keep hitting the sealed snapshot in memory
  // while the PUT is in flight; new writes start a fresh memtable.
  t.sealed = std::move(t.memtable);
  t.memtable.clear();
  const util::Bytes bytes = t.memtable_bytes;
  t.memtable_bytes = 0;
  const std::string name = gen_object(shard, t.next_gen++);
  NodeState& n = node(node_id);
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kTablet, "tablet.flush");
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "shard", std::to_string(shard));
    tracer_->annotate(span, "bytes", std::to_string(bytes));
  }
  trace::ScopedContext tctx(tracer_, span);
  const bool accepted = store_.put_fenced(
      node_id, n.epoch, {config_.bucket, name}, bytes,
      [this, shard, name, bytes, span] {
        trace::end_span(tracer_, span);
        auto it = tablets_.find(shard);
        if (it == tablets_.end()) return;  // merged away mid-flush
        Tablet& t = it->second;
        t.gens.push_back(Generation{name, bytes});
        t.sealed.clear();
        t.flushing = false;
        ++flushes_;
        metrics_.count("flushes");
        metrics_.count("flush_bytes", bytes);
        if (t.moving) {
          // The move was waiting on this flush: hand off to the target.
          fabric_.transfer(
              map_.shard(shard).node, t.move_target, config_.handoff_bytes,
              [this, shard] {
                sim_.after(config_.reopen_delay, [this, shard] {
                  auto jt = tablets_.find(shard);
                  if (jt == tablets_.end()) return;
                  finish_move(shard, map_.shard(shard).node,
                              jt->second.move_target);
                });
              });
          return;
        }
        if (!map_.has_shard(shard)) return;
        maybe_flush(map_.shard(shard).node, shard);
        arm_age_flush(map_.shard(shard).node, shard);
      });
  if (!accepted) {
    // Fenced flush (zombie server): restore the seal; the tablet is
    // about to be shed and re-opened elsewhere from WAL-durable state.
    trace::end_span(tracer_, span);
    metrics_.count("flushes_fenced");
    for (const auto& [key, seq] : t.sealed) {
      auto mem = t.memtable.find(key);
      if (mem == t.memtable.end() || mem->second < seq) {
        t.memtable[key] = seq;
      }
    }
    t.sealed.clear();
    t.memtable_bytes += bytes;
    t.flushing = false;
    --t.next_gen;
  }
}

// -- Shard lifecycle ----------------------------------------------------

bool TabletService::split_shard(ShardId id, std::uint64_t at) {
  auto it = tablets_.find(id);
  if (it == tablets_.end()) return false;
  Tablet& t = it->second;
  if (t.moving || t.flushing) return false;
  const ShardInfo info = map_.shard(id);
  if (at <= info.start || at >= info.end) return false;
  const ShardId right = map_.split(id, at);
  Tablet r;
  r.id = right;
  // Hand the upper half of the in-memory state to the new tablet.
  for (auto mem = t.memtable.lower_bound(at); mem != t.memtable.end();) {
    r.memtable.insert(*mem);
    mem = t.memtable.erase(mem);
  }
  const std::size_t total_entries = t.memtable.size() + r.memtable.size();
  if (total_entries > 0) {
    const util::Bytes moved =
        t.memtable_bytes *
        static_cast<util::Bytes>(r.memtable.size()) /
        static_cast<util::Bytes>(total_entries);
    r.memtable_bytes = moved;
    t.memtable_bytes -= moved;
  }
  r.gens = t.gens;  // both halves keep reading the shared generations
  std::deque<Op> keep;
  for (Op& op : t.queue) {
    (op.key < at ? keep : r.queue).push_back(std::move(op));
  }
  t.queue = std::move(keep);
  for (auto acc = t.access.lower_bound(at); acc != t.access.end();) {
    r.access.insert(*acc);
    acc = t.access.erase(acc);
  }
  std::int64_t left_ops = 0, right_ops = 0;
  for (const auto& [k, c] : t.access) left_ops += c;
  for (const auto& [k, c] : r.access) right_ops += c;
  t.ops_interval = left_ops;
  r.ops_interval = right_ops;
  const ShardId rid = r.id;
  tablets_[rid] = std::move(r);
  host(info.node, rid);
  metrics_.count("splits");
  if (tablets_.at(rid).memtable_bytes > 0) arm_age_flush(info.node, rid);
  kick(info.node);
  return true;
}

bool TabletService::merge_shards(ShardId left, ShardId right) {
  auto lt = tablets_.find(left);
  auto rt = tablets_.find(right);
  if (lt == tablets_.end() || rt == tablets_.end()) return false;
  Tablet& l = lt->second;
  Tablet& r = rt->second;
  if (l.moving || r.moving || l.flushing || r.flushing) return false;
  const ShardInfo li = map_.shard(left);
  const ShardInfo ri = map_.shard(right);
  if (li.end != ri.start || li.node != ri.node) return false;
  map_.merge(left, right);
  l.memtable.insert(r.memtable.begin(), r.memtable.end());
  l.memtable_bytes += r.memtable_bytes;
  for (const Generation& g : r.gens) {
    const bool dup = std::any_of(
        l.gens.begin(), l.gens.end(),
        [&g](const Generation& mine) { return mine.object == g.object; });
    if (!dup) l.gens.push_back(g);
  }
  for (Op& op : r.queue) l.queue.push_back(std::move(op));
  for (const auto& [k, c] : r.access) l.access[k] += c;
  l.ops_interval += r.ops_interval;
  cancel_age_flush(r);
  unhost(li.node, right);
  tablets_.erase(rt);
  metrics_.count("merges");
  if (l.memtable_bytes > 0) arm_age_flush(li.node, left);
  return true;
}

bool TabletService::move_shard(ShardId id, cluster::NodeId target) {
  auto it = tablets_.find(id);
  if (it == tablets_.end()) return false;
  Tablet& t = it->second;
  if (t.moving || t.flushing) return false;
  if (nodes_.count(target) == 0) return false;
  const cluster::NodeId source = map_.shard(id).node;
  if (target == source) return false;
  NodeState& dst = node(target);
  if (!dst.serving || dst.drained) return false;
  t.moving = true;
  t.move_start = sim_.now();
  t.move_target = target;
  metrics_.count("moves_started");
  cancel_age_flush(t);
  bounce_queue(source, t, OpStatus::kUnavailable);
  NodeState& src = node(source);
  if (src.serving && t.memtable_bytes > 0) {
    // Graceful: flush, then hand off (start_flush resumes the move).
    start_flush(source, id);
    if (t.moving && t.flushing) return true;
    // The flush was fenced: fall through to a recovery re-open.
  }
  if (src.serving && !t.flushing && t.memtable_bytes == 0 &&
      store_.fence_epoch(source) <= src.epoch) {
    fabric_.transfer(source, target, config_.handoff_bytes, [this, id] {
      sim_.after(config_.reopen_delay, [this, id] {
        auto jt = tablets_.find(id);
        if (jt == tablets_.end()) return;
        finish_move(id, map_.shard(id).node, jt->second.move_target);
      });
    });
    return true;
  }
  // Recovery re-open: the target rebuilds from flushed generations plus
  // WAL replay; the source contributes nothing.
  sim_.after(config_.reopen_delay + config_.wal_replay_cost, [this, id] {
    auto jt = tablets_.find(id);
    if (jt == tablets_.end()) return;
    finish_move(id, map_.shard(id).node, jt->second.move_target);
  });
  return true;
}

void TabletService::finish_move(ShardId id, cluster::NodeId from,
                                cluster::NodeId to) {
  Tablet& t = tablet(id);
  NodeState& dst = node(to);
  if (!dst.serving || dst.drained) {
    // The target died while the shard was in flight: re-open somewhere
    // else (or park on the target until it reconnects).
    const cluster::NodeId other = pick_target(to);
    if (other != cluster::kInvalidNode && other != from) {
      t.move_target = other;
      sim_.after(config_.reopen_delay, [this, id, from] {
        auto jt = tablets_.find(id);
        if (jt == tablets_.end()) return;
        finish_move(id, from, jt->second.move_target);
      });
      return;
    }
  }
  map_.move(id, to);
  unhost(from, id);
  host(to, id);
  t.moving = false;
  const util::TimeNs window = sim_.now() - t.move_start;
  move_unavail_ns_ += window;
  ++moves_completed_;
  metrics_.count("moves_completed");
  metrics_.observe("move_unavail_us", window / util::kMicrosecond);
  if (t.memtable_bytes > 0) arm_age_flush(to, id);
  kick(to);
}

void TabletService::bounce_queue(cluster::NodeId node_id, Tablet& t,
                                 OpStatus status) {
  std::deque<Op> drained;
  drained.swap(t.queue);
  for (Op& op : drained) respond(node_id, op, status, t.id);
}

bool TabletService::shard_moving(ShardId id) const {
  auto it = tablets_.find(id);
  return it != tablets_.end() && it->second.moving;
}

std::uint64_t TabletService::split_point(ShardId id) const {
  const ShardInfo info = map_.shard(id);
  const std::uint64_t mid = info.start + (info.end - info.start) / 2;
  const Tablet& t = tablet(id);
  std::int64_t total = 0;
  for (const auto& [k, c] : t.access) total += c;
  if (total == 0) return mid;
  std::int64_t cum = 0;
  std::uint64_t median = info.start;
  for (const auto& [k, c] : t.access) {
    cum += c;
    if (cum * 2 >= total) {
      median = k;
      break;
    }
  }
  if (median <= info.start || median >= info.end) return mid;
  return median;
}

bool TabletService::hot_key_dominated(ShardId id) const {
  const Tablet& t = tablet(id);
  std::int64_t total = 0, top = 0;
  for (const auto& [k, c] : t.access) {
    total += c;
    top = std::max(top, c);
  }
  return total > 0 &&
         static_cast<double>(top) >=
             config_.hot_key_fraction * static_cast<double>(total);
}

std::int64_t TabletService::shard_ops(ShardId id) const {
  auto it = tablets_.find(id);
  return it == tablets_.end() ? 0 : it->second.ops_interval;
}

std::int64_t TabletService::node_ops(cluster::NodeId node_id) const {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return 0;
  std::int64_t total = 0;
  for (ShardId s : it->second.hosted) total += shard_ops(s);
  return total;
}

void TabletService::begin_interval() {
  for (auto& [id, t] : tablets_) {
    t.ops_interval = 0;
    t.access.clear();
  }
}

// -- Fault hooks --------------------------------------------------------

void TabletService::handle_lease_expired(cluster::NodeId node_id,
                                         std::int64_t /*epoch*/) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end() || !it->second.serving) return;
  NodeState& n = it->second;
  n.serving = false;
  metrics_.count("lease_sheds");
  // Note: n.epoch is deliberately NOT bumped — the zombie server does
  // not know it was fenced, and its in-flight WAL/flush PUTs still carry
  // the old epoch (the store rejects them).
  const std::vector<ShardId> hosted = n.hosted;
  for (ShardId id : hosted) {
    Tablet& t = tablet(id);
    bounce_queue(node_id, t, OpStatus::kUnavailable);
    if (t.moving) continue;  // its in-flight move will re-target
    const cluster::NodeId target = pick_target(node_id);
    if (target == cluster::kInvalidNode) continue;  // park until reconnect
    t.moving = true;
    t.move_start = sim_.now();
    t.move_target = target;
    cancel_age_flush(t);
    metrics_.count("moves_started");
    sim_.after(config_.reopen_delay + config_.wal_replay_cost,
               [this, id, node_id] {
                 auto jt = tablets_.find(id);
                 if (jt == tablets_.end()) return;
                 finish_move(id, node_id, jt->second.move_target);
               });
  }
}

void TabletService::handle_node_reconnected(cluster::NodeId node_id,
                                            std::int64_t epoch) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  it->second.serving = true;
  it->second.epoch = epoch;  // the server learns its new fencing epoch
  metrics_.count("lease_rejoins");
  kick(node_id);
}

void TabletService::set_node_slowdown(cluster::NodeId node_id,
                                      double factor) {
  auto it = nodes_.find(node_id);
  if (it != nodes_.end()) it->second.slowdown = factor;
}

void TabletService::set_node_drained(cluster::NodeId node_id, bool drained) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  NodeState& n = it->second;
  if (n.drained == drained) return;
  n.drained = drained;
  metrics_.count(drained ? "drains" : "undrains");
  if (!drained) return;
  // Graceful shed: the node is alive (just flagged), so tablets move
  // off with a proper flush + handoff.
  const std::vector<ShardId> hosted = n.hosted;
  for (ShardId id : hosted) {
    const cluster::NodeId target = pick_target(node_id);
    if (target == cluster::kInvalidNode) break;
    move_shard(id, target);
  }
}

bool TabletService::node_serving(cluster::NodeId node_id) const {
  auto it = nodes_.find(node_id);
  return it != nodes_.end() && it->second.serving && !it->second.drained;
}

cluster::NodeId TabletService::pick_target(cluster::NodeId except) const {
  cluster::NodeId best = cluster::kInvalidNode;
  std::size_t best_hosted = 0;
  for (cluster::NodeId id : nodes_list_) {
    if (id == except) continue;
    const NodeState& n = nodes_.at(id);
    if (!n.serving || n.drained) continue;
    if (best == cluster::kInvalidNode || n.hosted.size() < best_hosted) {
      best = id;
      best_hosted = n.hosted.size();
    }
  }
  return best;
}

std::vector<ShardStats> TabletService::shard_stats() const {
  std::vector<ShardStats> out;
  for (const ShardInfo& info : map_.shards()) {
    const Tablet& t = tablet(info.id);
    ShardStats s;
    s.id = info.id;
    s.start = info.start;
    s.end = info.end;
    s.node = info.node;
    s.queue_depth = static_cast<int>(t.queue.size());
    s.memtable_bytes = t.memtable_bytes;
    s.generations = static_cast<int>(t.gens.size());
    s.ops_interval = t.ops_interval;
    s.moving = t.moving;
    s.hot_key_dominated = hot_key_dominated(info.id);
    out.push_back(s);
  }
  return out;
}

void TabletService::stop() {
  stopped_ = true;
  for (auto& [id, t] : tablets_) cancel_age_flush(t);
}

// -- TabletClient -------------------------------------------------------

TabletClient::TabletClient(sim::Simulation& sim, TabletService& service,
                           ClientConfig config)
    : sim_(sim), service_(service), config_(config) {
  refresh_now();
}

void TabletClient::refresh_now() {
  cache_ = service_.shard_map().shards();
  cache_epoch_ = service_.shard_map().epoch();
}

cluster::NodeId TabletClient::cached_owner(std::uint64_t key) const {
  // cache_ is sorted by start; find the last shard starting at or
  // before the key.
  auto it = std::upper_bound(
      cache_.begin(), cache_.end(), key,
      [](std::uint64_t k, const ShardInfo& s) { return k < s.start; });
  --it;
  return it->node;
}

void TabletClient::submit(OpKind kind, std::uint64_t key,
                          cluster::NodeId client,
                          TabletService::OpCallback done) {
  Pending p;
  p.kind = kind;
  p.key = key;
  p.client = client;
  p.done = std::move(done);
  p.span = trace::begin_span(service_.tracer(), trace::Layer::kTablet,
                             "tablet.op");
  if (p.span != trace::kNoSpan) {
    service_.tracer()->annotate(p.span, "key", std::to_string(key));
  }
  route(std::move(p));
}

void TabletClient::submit(const serve::Request& req, OpKind kind,
                          TabletService::OpCallback done) {
  submit(kind, req.key, req.client, std::move(done));
}

void TabletClient::route(Pending p) {
  ++p.attempts;
  const cluster::NodeId owner = cached_owner(p.key);
  const auto kind = p.kind;
  const auto key = p.key;
  const auto client = p.client;
  const auto span = p.span;
  service_.submit(
      owner, kind, key, client,
      [this, p = std::move(p)](OpResult r) mutable {
        const bool retryable = r.status == OpStatus::kWrongShard ||
                               r.status == OpStatus::kUnavailable;
        if (retryable && p.attempts < config_.max_attempts) {
          if (r.status == OpStatus::kWrongShard) {
            ++wrong_shard_retries_;
          } else {
            ++unavailable_retries_;
          }
          // Refresh the cached map (paying the fetch) and try again.
          sim_.after(config_.retry_backoff + config_.map_fetch_latency,
                     [this, p = std::move(p)]() mutable {
                       refresh_now();
                       route(std::move(p));
                     });
          return;
        }
        if (retryable) ++exhausted_;
        r.attempts = p.attempts;
        if (service_.tracer() && p.span != trace::kNoSpan) {
          service_.tracer()->annotate(p.span, "status",
                                      to_string(r.status));
          service_.tracer()->annotate(p.span, "attempts",
                                      std::to_string(p.attempts));
        }
        trace::end_span(service_.tracer(), p.span);
        p.done(r);
      },
      span);
}

}  // namespace evolve::tablet
