// Tablet-style stateful serving: a sharded KV layer over the object
// store (Bigtable/YTsaurus dynamic-table lineage).
//
// The key space is partitioned into range shards (tablets), each hosted
// by one tablet server node. The write path is ack-after-durable: a
// write is sequenced, executed on the owner, appended to the node's
// group-commit WAL (an epoch-stamped object-store PUT, so durability
// rides the store's replication/EC machinery), applied, and only then
// acknowledged. Apply is idempotent — a write lands only when its seq is
// newer than the key's last applied seq — so client retries across
// shard-map epochs can never double-apply. The read path serves from
// the memtable when the key was written since the last flush and
// otherwise pays a checksummed block read against the newest flushed
// generation.
//
// Memtables flush into generation objects on size or age; tablets
// split under sustained load, merge when cold, and move between nodes
// (flush + re-open on the target, with the unavailability window
// accounted). Routing is epoch-stamped: clients hold a cached ShardMap
// snapshot and retry on WrongShard (see TabletClient). The fault layer
// plugs in through fault/wiring.hpp: lease expiry sheds a node's
// tablets and — because the node's fencing epoch moved — its in-flight
// WAL/flush PUTs become zombie writes the store rejects; gray CPU
// slowdowns stretch tablet execution; quarantine drains tablets off the
// node gracefully.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "serve/request.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "tablet/shard_map.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::tablet {

enum class OpKind { kRead, kWrite };

enum class OpStatus {
  kOk,           // completed (write durable+applied, read served)
  kNotFound,     // read of a never-written key (still a completion)
  kWrongShard,   // this node no longer owns the key; refresh and retry
  kQueueFull,    // bounced off the shard's bounded queue
  kUnavailable,  // owner not serving / tablet mid-move; retry later
  kFenced,       // write lost to fencing: the node's epoch was stale
};

const char* to_string(OpStatus status);

struct OpResult {
  OpStatus status = OpStatus::kUnavailable;
  ShardId shard = kInvalidShard;
  std::int64_t epoch = 0;  // authoritative map epoch at response time
  std::int64_t seq = 0;    // the write's sequence number (0 for reads)
  bool from_memtable = false;  // read needed no store block read
  int attempts = 1;            // client-side attempts consumed
};

struct TabletConfig {
  std::uint64_t keyspace = 1 << 20;
  /// Shards at construction, spread round-robin across the nodes.
  int initial_shards = 1;
  std::string bucket = "tablets";
  util::Bytes request_bytes = 512;        // client -> owner
  util::Bytes response_bytes = 2 * util::kKiB;  // read payload back
  util::Bytes ack_bytes = 256;            // write ack / error responses
  util::Bytes value_bytes = 1 * util::kKiB;     // logical value size
  util::Bytes block_bytes = 16 * util::kKiB;    // generation block read
  util::TimeNs read_cost = util::micros(60);    // owner CPU per read
  util::TimeNs write_cost = util::micros(90);   // owner CPU per write
  int queue_limit = 64;  // per-shard bounded queue
  // -- Memtable flush ---------------------------------------------------
  util::Bytes flush_bytes = 4 * util::kMiB;  // size trigger
  util::TimeNs flush_age = util::seconds(2);  // age trigger
  // -- WAL group commit -------------------------------------------------
  util::Bytes wal_entry_bytes = 128;  // per-entry framing on top of value
  util::TimeNs wal_group_delay = util::micros(200);
  // -- Moves ------------------------------------------------------------
  util::Bytes handoff_bytes = 32 * util::kKiB;  // src -> target metadata
  util::TimeNs reopen_delay = util::millis(2);
  /// Extra reopen cost when the source could not hand off (lease-shed
  /// recovery: the target replays the WAL instead).
  util::TimeNs wal_replay_cost = util::millis(5);
  // -- Hot keys ---------------------------------------------------------
  /// One key taking at least this fraction of a shard's accesses marks
  /// the shard hot-key-dominated: splitting cannot spread one key, so
  /// the balancer prefers moving the shard whole.
  double hot_key_fraction = 0.5;
};

/// Per-shard introspection snapshot.
struct ShardStats {
  ShardId id = kInvalidShard;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  cluster::NodeId node = cluster::kInvalidNode;
  int queue_depth = 0;
  util::Bytes memtable_bytes = 0;
  int generations = 0;
  std::int64_t ops_interval = 0;  // accepted ops since begin_interval()
  bool moving = false;
  bool hot_key_dominated = false;
};

class TabletService {
 public:
  using OpCallback = std::function<void(OpResult)>;

  TabletService(sim::Simulation& sim, net::Fabric& fabric,
                storage::ObjectStore& store,
                std::vector<cluster::NodeId> nodes, TabletConfig config = {});
  TabletService(const TabletService&) = delete;
  TabletService& operator=(const TabletService&) = delete;

  /// Sends one op from `client` to `node` (the owner per the *caller's*
  /// routing table): request transfer, ownership check, bounded queue,
  /// execution. `done` runs on the client after the response transfer.
  /// Use TabletClient for the retrying, cache-refreshing front end.
  void submit(cluster::NodeId node, OpKind kind, std::uint64_t key,
              cluster::NodeId client, OpCallback done,
              trace::SpanId parent = trace::kNoSpan);

  const ShardMap& shard_map() const { return map_; }
  const std::vector<cluster::NodeId>& nodes() const { return nodes_list_; }

  // -- Shard lifecycle (balancer verbs) --------------------------------
  /// Splits `id` at `at`; both halves stay on the owner. False when the
  /// shard is mid-move or `at` is outside its range.
  bool split_shard(ShardId id, std::uint64_t at);
  /// Merges the range-adjacent `right` into `left`; both must sit on
  /// the same node and neither may be mid-move.
  bool merge_shards(ShardId left, ShardId right);
  /// Moves `id` to `target`: bounce the queue, flush, hand off, re-open
  /// — the shard is Unavailable for the whole window (accounted).
  bool move_shard(ShardId id, cluster::NodeId target);
  bool shard_moving(ShardId id) const;
  /// Median key of the shard's recent accesses (the split point that
  /// halves its load); the range midpoint before any access lands.
  std::uint64_t split_point(ShardId id) const;
  bool hot_key_dominated(ShardId id) const;
  /// Accepted ops per shard / node since the last begin_interval().
  std::int64_t shard_ops(ShardId id) const;
  std::int64_t node_ops(cluster::NodeId node) const;
  /// Closes the balancer observation window: resets per-shard op counts
  /// and access samples.
  void begin_interval();

  // -- Fault-layer hooks (see fault/wiring.hpp) ------------------------
  /// Lease expired: the node stops serving and its tablets are shed to
  /// surviving nodes via recovery re-open (no source flush — but every
  /// acked write is already WAL-durable). The node itself does not
  /// learn: its in-flight WAL/flush PUTs still carry the old epoch and
  /// are fenced by the store.
  void handle_lease_expired(cluster::NodeId node, std::int64_t epoch);
  /// The node reconnected at `epoch`: it may host tablets again and
  /// stamps future writes with the new epoch.
  void handle_node_reconnected(cluster::NodeId node, std::int64_t epoch);
  /// Gray CPU slowdown: stretches op execution on the node.
  void set_node_slowdown(cluster::NodeId node, double factor);
  /// Quarantine: drains the node — tablets move off gracefully and the
  /// balancer stops targeting it until undrained.
  void set_node_drained(cluster::NodeId node, bool drained);
  bool node_serving(cluster::NodeId node) const;

  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }
  std::vector<ShardStats> shard_stats() const;

  // -- Counters ---------------------------------------------------------
  std::int64_t ops_ok() const { return ops_ok_; }
  std::int64_t not_found() const { return not_found_; }
  std::int64_t wrong_shard() const { return wrong_shard_; }
  std::int64_t shed_queue_full() const { return shed_queue_full_; }
  std::int64_t unavailable() const { return unavailable_; }
  std::int64_t fenced_writes() const { return fenced_writes_; }
  std::int64_t dup_writes() const { return dup_writes_; }
  std::int64_t applied_writes() const { return applied_writes_; }
  std::int64_t memtable_hits() const { return memtable_hits_; }
  std::int64_t block_reads() const { return block_reads_; }
  std::int64_t flushes() const { return flushes_; }
  std::int64_t wal_commits() const { return wal_commits_; }
  std::int64_t moves_completed() const { return moves_completed_; }
  double move_unavail_seconds() const {
    return static_cast<double>(move_unavail_ns_) / 1e9;
  }

  /// Write audit for tests: with recording on, apply_counts()[seq] is
  /// how many times the write with that seq was applied — the no-loss /
  /// no-duplication invariant is "exactly 1 for every acked seq".
  void record_applies(bool on) { record_applies_ = on; }
  const std::map<std::int64_t, int>& apply_counts() const {
    return apply_counts_;
  }

  /// Cancels age-flush timers (end-of-experiment drain).
  void stop();

 private:
  struct Op {
    OpKind kind = OpKind::kRead;
    std::uint64_t key = 0;
    std::int64_t seq = 0;  // assigned at acceptance (writes)
    cluster::NodeId client = cluster::kInvalidNode;
    util::TimeNs queued_at = 0;
    trace::SpanId span = trace::kNoSpan;
    OpCallback cb;
  };
  struct Generation {
    std::string object;  // bucket-relative name
    util::Bytes bytes = 0;
  };
  struct Tablet {
    ShardId id = kInvalidShard;
    std::deque<Op> queue;
    /// Keys written since the last flush (seq per key) + the sealed
    /// (flushing) snapshot — both serve reads without store I/O.
    std::map<std::uint64_t, std::int64_t> memtable;
    std::map<std::uint64_t, std::int64_t> sealed;
    util::Bytes memtable_bytes = 0;
    std::vector<Generation> gens;
    std::int64_t next_gen = 0;
    bool flushing = false;
    bool moving = false;
    util::TimeNs move_start = 0;
    cluster::NodeId move_target = cluster::kInvalidNode;
    sim::EventId age_timer = 0;
    bool age_armed = false;
    // Balancer observation window.
    std::int64_t ops_interval = 0;
    std::map<std::uint64_t, std::int64_t> access;
  };
  struct PendingWrite {
    std::uint64_t key = 0;
    std::int64_t seq = 0;
    ShardId shard = kInvalidShard;
    cluster::NodeId client = cluster::kInvalidNode;
    trace::SpanId span = trace::kNoSpan;
    OpCallback cb;
  };
  struct NodeState {
    bool serving = true;
    bool drained = false;
    double slowdown = 1.0;
    std::int64_t epoch = 1;  // fencing epoch this server stamps PUTs with
    std::vector<ShardId> hosted;  // round-robin order
    std::size_t rr = 0;
    bool busy = false;
    std::vector<PendingWrite> group;  // accumulating WAL group
    bool group_armed = false;
    bool commit_inflight = false;
    std::int64_t wal_objects = 0;
  };

  Tablet& tablet(ShardId id);
  const Tablet& tablet(ShardId id) const;
  NodeState& node(cluster::NodeId id);
  void arrive(cluster::NodeId node, Op op);
  void kick(cluster::NodeId node);
  void execute(cluster::NodeId node, ShardId shard, Op op);
  void finish_read(cluster::NodeId node, ShardId shard, Op op);
  void append_wal(cluster::NodeId node, ShardId shard, Op op);
  void commit_wal(cluster::NodeId node);
  void apply_write(cluster::NodeId node_id, const PendingWrite& w);
  void respond(cluster::NodeId from, const Op& op, OpStatus status,
               ShardId shard, bool from_memtable = false);
  void respond_write(cluster::NodeId from, const PendingWrite& w,
                     OpStatus status);
  void deliver(cluster::NodeId from, cluster::NodeId to, util::Bytes bytes,
               trace::SpanId span, OpResult result, OpCallback cb);
  void maybe_flush(cluster::NodeId node_id, ShardId shard);
  void start_flush(cluster::NodeId node_id, ShardId shard);
  void arm_age_flush(cluster::NodeId node_id, ShardId shard);
  void cancel_age_flush(Tablet& t);
  void bounce_queue(cluster::NodeId node_id, Tablet& t, OpStatus status);
  void finish_move(ShardId id, cluster::NodeId from, cluster::NodeId to);
  /// Least-loaded serving, undrained node other than `except`.
  cluster::NodeId pick_target(cluster::NodeId except) const;
  void host(cluster::NodeId node_id, ShardId shard);
  void unhost(cluster::NodeId node_id, ShardId shard);
  std::string gen_object(ShardId shard, std::int64_t gen) const;

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  storage::ObjectStore& store_;
  std::vector<cluster::NodeId> nodes_list_;
  TabletConfig config_;
  ShardMap map_;
  std::map<ShardId, Tablet> tablets_;
  std::map<cluster::NodeId, NodeState> nodes_;
  std::map<std::uint64_t, std::int64_t> applied_seq_;  // key -> last seq
  std::int64_t next_seq_ = 1;
  bool stopped_ = false;
  bool record_applies_ = false;
  std::map<std::int64_t, int> apply_counts_;
  std::int64_t ops_ok_ = 0;
  std::int64_t not_found_ = 0;
  std::int64_t wrong_shard_ = 0;
  std::int64_t shed_queue_full_ = 0;
  std::int64_t unavailable_ = 0;
  std::int64_t fenced_writes_ = 0;
  std::int64_t dup_writes_ = 0;
  std::int64_t applied_writes_ = 0;
  std::int64_t memtable_hits_ = 0;
  std::int64_t block_reads_ = 0;
  std::int64_t flushes_ = 0;
  std::int64_t wal_commits_ = 0;
  std::int64_t moves_completed_ = 0;
  util::TimeNs move_unavail_ns_ = 0;
  metrics::Registry metrics_;
  trace::Tracer* tracer_ = nullptr;
};

struct ClientConfig {
  int max_attempts = 6;
  /// Wait before a WrongShard/Unavailable retry (on top of the map
  /// fetch).
  util::TimeNs retry_backoff = util::millis(1);
  /// Cost of refreshing the cached shard map from the control plane.
  util::TimeNs map_fetch_latency = util::micros(500);
};

/// The routing front end: holds a cached, epoch-stamped snapshot of the
/// shard map and routes ops to the owner it *believes* is right. On
/// WrongShard/Unavailable it refreshes the snapshot (paying the fetch
/// latency) and retries, up to max_attempts. Draws no random numbers.
class TabletClient {
 public:
  TabletClient(sim::Simulation& sim, TabletService& service,
               ClientConfig config = {});
  TabletClient(const TabletClient&) = delete;
  TabletClient& operator=(const TabletClient&) = delete;

  void submit(OpKind kind, std::uint64_t key, cluster::NodeId client,
              TabletService::OpCallback done);
  /// serve-layer integration: routes a keyed serve::Request.
  void submit(const serve::Request& req, OpKind kind,
              TabletService::OpCallback done);

  /// Synchronously re-snapshots the authoritative map (tests).
  void refresh_now();
  std::int64_t cached_epoch() const { return cache_epoch_; }
  std::int64_t wrong_shard_retries() const { return wrong_shard_retries_; }
  std::int64_t unavailable_retries() const { return unavailable_retries_; }
  /// Ops that ran out of attempts (surfaced to the caller as-is).
  std::int64_t exhausted() const { return exhausted_; }

 private:
  struct Pending {
    OpKind kind = OpKind::kRead;
    std::uint64_t key = 0;
    cluster::NodeId client = cluster::kInvalidNode;
    int attempts = 0;
    trace::SpanId span = trace::kNoSpan;
    TabletService::OpCallback done;
  };

  void route(Pending p);
  cluster::NodeId cached_owner(std::uint64_t key) const;

  sim::Simulation& sim_;
  TabletService& service_;
  ClientConfig config_;
  std::vector<ShardInfo> cache_;
  std::int64_t cache_epoch_ = 0;
  std::int64_t wrong_shard_retries_ = 0;
  std::int64_t unavailable_retries_ = 0;
  std::int64_t exhausted_ = 0;
};

}  // namespace evolve::tablet
