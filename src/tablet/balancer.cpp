#include "tablet/balancer.hpp"

#include <algorithm>
#include <vector>

namespace evolve::tablet {

TabletBalancer::TabletBalancer(sim::Simulation& sim, TabletService& service,
                               BalancerConfig config)
    : sim_(sim), service_(service), config_(config) {}

void TabletBalancer::start() {
  if (running_) return;
  running_ = true;
  service_.begin_interval();
  timer_ = sim_.after(config_.interval, [this] {
    if (!running_) return;
    tick();
    running_ = false;  // re-arm through start()
    start();
  });
}

void TabletBalancer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(timer_);
}

void TabletBalancer::tick() {
  maybe_split();
  maybe_merge();
  maybe_move();
  service_.begin_interval();
}

void TabletBalancer::maybe_split() {
  int budget = config_.max_splits_per_tick;
  // Hottest shards first, so the budget goes where it matters.
  std::vector<ShardInfo> shards = service_.shard_map().shards();
  std::sort(shards.begin(), shards.end(),
            [this](const ShardInfo& a, const ShardInfo& b) {
              return service_.shard_ops(a.id) > service_.shard_ops(b.id);
            });
  for (const ShardInfo& s : shards) {
    if (budget <= 0) return;
    if (service_.shard_map().shard_count() >= config_.max_shards) return;
    if (service_.shard_ops(s.id) < config_.split_ops) return;  // sorted
    if (s.end - s.start < 2) continue;        // nothing left to split
    if (service_.hot_key_dominated(s.id)) continue;  // move it instead
    if (service_.shard_moving(s.id)) continue;
    if (service_.split_shard(s.id, service_.split_point(s.id))) {
      ++splits_;
      --budget;
    }
  }
}

void TabletBalancer::maybe_merge() {
  int budget = config_.max_merges_per_tick;
  const std::vector<ShardInfo> shards = service_.shard_map().shards();
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    if (budget <= 0) return;
    if (service_.shard_map().shard_count() <= config_.min_shards) return;
    const ShardInfo& l = shards[i];
    const ShardInfo& r = shards[i + 1];
    if (l.node != r.node) continue;
    if (service_.shard_ops(l.id) >= config_.merge_ops ||
        service_.shard_ops(r.id) >= config_.merge_ops) {
      continue;
    }
    if (service_.shard_moving(l.id) || service_.shard_moving(r.id)) continue;
    if (service_.merge_shards(l.id, r.id)) {
      ++merges_;
      --budget;
      ++i;  // r is gone; don't pair it again
    }
  }
}

void TabletBalancer::maybe_move() {
  int budget = config_.max_moves_per_tick;
  while (budget > 0) {
    cluster::NodeId busiest = cluster::kInvalidNode;
    cluster::NodeId idlest = cluster::kInvalidNode;
    std::int64_t busiest_ops = -1;
    std::int64_t idlest_ops = 0;
    for (cluster::NodeId n : service_.nodes()) {
      if (!service_.node_serving(n)) continue;
      const std::int64_t ops = service_.node_ops(n);
      if (ops > busiest_ops) {
        busiest = n;
        busiest_ops = ops;
      }
      if (idlest == cluster::kInvalidNode || ops < idlest_ops) {
        idlest = n;
        idlest_ops = ops;
      }
    }
    if (busiest == cluster::kInvalidNode || idlest == cluster::kInvalidNode ||
        busiest == idlest) {
      return;
    }
    if (busiest_ops - idlest_ops < config_.min_move_ops) return;
    if (static_cast<double>(busiest_ops) <
        config_.imbalance_ratio * static_cast<double>(idlest_ops)) {
      return;
    }
    // Move the hottest movable shard; moving the coldest would need many
    // ticks to matter, and the move cost is per-shard, not per-op.
    ShardId victim = kInvalidShard;
    std::int64_t victim_ops = 0;
    for (ShardId s : service_.shard_map().shards_on(busiest)) {
      if (service_.shard_moving(s)) continue;
      const std::int64_t ops = service_.shard_ops(s);
      if (victim == kInvalidShard || ops > victim_ops) {
        victim = s;
        victim_ops = ops;
      }
    }
    if (victim == kInvalidShard) return;
    if (!service_.move_shard(victim, idlest)) return;
    ++moves_;
    --budget;
  }
}

}  // namespace evolve::tablet
