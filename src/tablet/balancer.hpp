// The tablet balancer: the control loop that turns per-shard load
// observations into split / merge / move decisions.
//
// Each tick it closes the service's observation window and acts on it:
// shards carrying sustained load split at the access median (unless one
// hot key dominates — splitting cannot spread a single key, so the
// shard moves whole instead); cold range-adjacent shards on the same
// node merge back; and when the busiest node carries materially more
// load than the idlest, the hottest movable shard migrates over. Moves
// cost real unavailability (flush + handoff + re-open), so the loop is
// deliberately conservative: bounded actions per tick, a minimum load
// floor before anything moves, and drained/non-serving nodes are never
// targeted.
#pragma once

#include <cstdint>

#include "sim/simulation.hpp"
#include "tablet/service.hpp"
#include "util/types.hpp"

namespace evolve::tablet {

struct BalancerConfig {
  util::TimeNs interval = util::millis(500);
  /// Ops in one interval above which a shard is split-hot.
  std::int64_t split_ops = 2000;
  /// Ops in one interval below which a shard is merge-cold.
  std::int64_t merge_ops = 50;
  int max_shards = 64;
  int min_shards = 1;
  /// Busiest node must carry this multiple of the idlest node's load
  /// before a move fires.
  double imbalance_ratio = 1.5;
  /// ... and at least this many ops more (absolute floor, so an idle
  /// cluster never shuffles tablets).
  std::int64_t min_move_ops = 200;
  int max_splits_per_tick = 2;
  int max_merges_per_tick = 2;
  int max_moves_per_tick = 1;
};

class TabletBalancer {
 public:
  TabletBalancer(sim::Simulation& sim, TabletService& service,
                 BalancerConfig config = {});
  TabletBalancer(const TabletBalancer&) = delete;
  TabletBalancer& operator=(const TabletBalancer&) = delete;

  void start();
  void stop();

  /// One balancing pass over the current observation window (also
  /// callable directly from tests, without start()).
  void tick();

  std::int64_t splits_triggered() const { return splits_; }
  std::int64_t merges_triggered() const { return merges_; }
  std::int64_t moves_triggered() const { return moves_; }

 private:
  void maybe_split();
  void maybe_merge();
  void maybe_move();

  sim::Simulation& sim_;
  TabletService& service_;
  BalancerConfig config_;
  bool running_ = false;
  sim::EventId timer_ = 0;
  std::int64_t splits_ = 0;
  std::int64_t merges_ = 0;
  std::int64_t moves_ = 0;
};

}  // namespace evolve::tablet
