// Epoch-stamped range-routing table for the tablet layer.
//
// The key space [0, keyspace) is partitioned into contiguous shards
// (tablets); each shard is hosted by exactly one node. Every mutation —
// split, merge, move — bumps the map's epoch, which is the coherence
// protocol between the authoritative map (owned by the TabletService)
// and the cached copies clients route by: a client whose cached epoch is
// behind may send an op to a node that no longer owns the key, the
// server answers WrongShard, and the client refreshes and retries. The
// epoch therefore never blocks the data path; it only bounds how stale a
// route can get before it is corrected.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/node.hpp"

namespace evolve::tablet {

using ShardId = std::int32_t;
inline constexpr ShardId kInvalidShard = -1;

struct ShardInfo {
  ShardId id = kInvalidShard;
  std::uint64_t start = 0;  // inclusive
  std::uint64_t end = 0;    // exclusive
  cluster::NodeId node = cluster::kInvalidNode;
};

class ShardMap {
 public:
  /// One shard spanning [0, keyspace) on `node`.
  ShardMap(std::uint64_t keyspace, cluster::NodeId node);

  std::uint64_t keyspace() const { return keyspace_; }
  std::int64_t epoch() const { return epoch_; }
  int shard_count() const { return static_cast<int>(by_start_.size()); }

  /// The shard owning `key` (keys are clamped into the key space).
  const ShardInfo& shard_for(std::uint64_t key) const;
  const ShardInfo& shard(ShardId id) const;
  bool has_shard(ShardId id) const { return start_of_.count(id) != 0; }

  /// Splits `id` at `at` (start < at < end): `id` keeps [start, at), the
  /// returned new shard takes [at, end) on the same node. Bumps epoch.
  ShardId split(ShardId id, std::uint64_t at);
  /// Merges `right` (the range neighbor directly after `left`) into
  /// `left`; `left` keeps its node and id. Bumps epoch.
  void merge(ShardId left, ShardId right);
  /// Reassigns `id` to `node`. Bumps epoch.
  void move(ShardId id, cluster::NodeId node);

  /// Shard directly after `id` in range order (kInvalidShard at the end).
  ShardId right_neighbor(ShardId id) const;

  /// All shards in range order.
  std::vector<ShardInfo> shards() const;
  /// Shards hosted by `node`, in range order.
  std::vector<ShardId> shards_on(cluster::NodeId node) const;

  std::int64_t splits() const { return splits_; }
  std::int64_t merges() const { return merges_; }
  std::int64_t moves() const { return moves_; }

 private:
  ShardInfo& info(ShardId id);

  std::uint64_t keyspace_;
  std::int64_t epoch_ = 1;
  ShardId next_id_ = 0;
  std::map<std::uint64_t, ShardInfo> by_start_;
  std::map<ShardId, std::uint64_t> start_of_;
  std::int64_t splits_ = 0;
  std::int64_t merges_ = 0;
  std::int64_t moves_ = 0;
};

}  // namespace evolve::tablet
