#include "cluster/node.hpp"

#include <algorithm>

namespace evolve::cluster {

Resources NodeSpec::allocatable(int accel_slots_per_device) const {
  Resources r;
  r.cpu_millicores = static_cast<std::int64_t>(cores) * 1000;
  r.memory_bytes = dram;
  r.accel_slots =
      static_cast<std::int64_t>(accel_devices) * accel_slots_per_device;
  return r;
}

const StorageDeviceSpec* NodeSpec::device(
    const std::string& device_name) const {
  for (const auto& dev : devices) {
    if (dev.name == device_name) return &dev;
  }
  return nullptr;
}

bool NodeSpec::has_label(const std::string& label) const {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

namespace {

StorageDeviceSpec dram_tier(util::Bytes capacity) {
  return StorageDeviceSpec{
      .name = "dram",
      .capacity = capacity,
      .read_bw_bytes_per_s = 20e9,
      .write_bw_bytes_per_s = 20e9,
      .access_latency = util::micros(1),
  };
}

StorageDeviceSpec nvme_tier(util::Bytes capacity) {
  return StorageDeviceSpec{
      .name = "nvme",
      .capacity = capacity,
      .read_bw_bytes_per_s = 3e9,
      .write_bw_bytes_per_s = 2e9,
      .access_latency = util::micros(80),
  };
}

StorageDeviceSpec hdd_tier(util::Bytes capacity) {
  return StorageDeviceSpec{
      .name = "hdd",
      .capacity = capacity,
      .read_bw_bytes_per_s = 180e6,
      .write_bw_bytes_per_s = 160e6,
      .access_latency = util::millis(8),
  };
}

}  // namespace

NodeSpec make_compute_node(const std::string& name, int rack) {
  NodeSpec node;
  node.name = name;
  node.cores = 32;
  node.core_speed = 1.0;
  node.dram = 128 * util::kGiB;
  node.accel_devices = 0;
  node.rack = rack;
  node.devices = {dram_tier(32 * util::kGiB), nvme_tier(2 * 1024 * util::kGiB)};
  node.labels = {"role=compute"};
  return node;
}

NodeSpec make_storage_node(const std::string& name, int rack) {
  NodeSpec node;
  node.name = name;
  node.cores = 16;
  node.core_speed = 1.0;
  node.dram = 192 * util::kGiB;
  node.accel_devices = 0;
  node.rack = rack;
  node.devices = {dram_tier(64 * util::kGiB), nvme_tier(8 * 1024 * util::kGiB),
                  hdd_tier(64 * 1024 * util::kGiB)};
  node.labels = {"role=storage"};
  return node;
}

NodeSpec make_accel_node(const std::string& name, int rack) {
  NodeSpec node;
  node.name = name;
  node.cores = 24;
  node.core_speed = 1.0;
  node.dram = 96 * util::kGiB;
  node.accel_devices = 2;
  node.rack = rack;
  node.devices = {dram_tier(24 * util::kGiB), nvme_tier(1024 * util::kGiB)};
  node.labels = {"role=accel"};
  return node;
}

}  // namespace evolve::cluster
