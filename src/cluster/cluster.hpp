// The simulated cluster: an indexed set of nodes plus a builder for the
// standard EVOLVE testbed shapes used by tests and benchmarks.
#pragma once

#include <string>
#include <vector>

#include "cluster/node.hpp"

namespace evolve::cluster {

class Cluster {
 public:
  /// Adds a node; returns its id (dense, starting at 0).
  NodeId add_node(NodeSpec spec);

  const NodeSpec& node(NodeId id) const;
  NodeId find(const std::string& name) const;  // kInvalidNode if missing

  int size() const { return static_cast<int>(nodes_.size()); }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }

  /// Node ids whose spec has the given label.
  std::vector<NodeId> nodes_with_label(const std::string& label) const;

  /// Number of racks (max rack index + 1).
  int rack_count() const;

  /// Total allocatable resources across all nodes.
  Resources total_allocatable(int accel_slots_per_device = 1) const;

 private:
  std::vector<NodeSpec> nodes_;
};

/// Builds the canonical EVOLVE-style converged testbed:
/// `compute` compute nodes, `storage` storage nodes, `accel` FPGA nodes,
/// spread round-robin across `racks` racks.
Cluster make_testbed(int compute, int storage, int accel, int racks = 2);

}  // namespace evolve::cluster
