// Multi-dimensional resource vectors (CPU millicores, memory, accelerator
// slots) used by the orchestrator and the unified scheduler.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace evolve::cluster {

/// A request/capacity vector. All fields are absolute quantities.
struct Resources {
  std::int64_t cpu_millicores = 0;
  util::Bytes memory_bytes = 0;
  std::int64_t accel_slots = 0;  // FPGA virtual-device slots

  Resources& operator+=(const Resources& other);
  Resources& operator-=(const Resources& other);
  friend Resources operator+(Resources a, const Resources& b) {
    return a += b;
  }
  friend Resources operator-(Resources a, const Resources& b) {
    return a -= b;
  }
  bool operator==(const Resources&) const = default;

  /// True if every dimension of `request` fits within this vector.
  bool fits(const Resources& request) const;

  /// True if any dimension is negative (over-commit bug guard).
  bool any_negative() const;

  /// True if all dimensions are zero.
  bool is_zero() const;

  /// Largest fraction request/capacity across dimensions (0 if capacity has
  /// a zero dimension that is requested -> returns +inf style 2.0 cap).
  double dominant_share(const Resources& capacity) const;

  std::string to_string() const;
};

/// Convenience builders.
Resources cpu_mem(std::int64_t millicores, util::Bytes memory);
Resources cpu_mem_accel(std::int64_t millicores, util::Bytes memory,
                        std::int64_t accel);

}  // namespace evolve::cluster
