#include "cluster/resources.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace evolve::cluster {

Resources& Resources::operator+=(const Resources& other) {
  cpu_millicores += other.cpu_millicores;
  memory_bytes += other.memory_bytes;
  accel_slots += other.accel_slots;
  return *this;
}

Resources& Resources::operator-=(const Resources& other) {
  cpu_millicores -= other.cpu_millicores;
  memory_bytes -= other.memory_bytes;
  accel_slots -= other.accel_slots;
  return *this;
}

bool Resources::fits(const Resources& request) const {
  return request.cpu_millicores <= cpu_millicores &&
         request.memory_bytes <= memory_bytes &&
         request.accel_slots <= accel_slots;
}

bool Resources::any_negative() const {
  return cpu_millicores < 0 || memory_bytes < 0 || accel_slots < 0;
}

bool Resources::is_zero() const {
  return cpu_millicores == 0 && memory_bytes == 0 && accel_slots == 0;
}

double Resources::dominant_share(const Resources& capacity) const {
  double share = 0.0;
  auto dim = [&share](std::int64_t req, std::int64_t cap) {
    if (req <= 0) return;
    if (cap <= 0) {
      share = std::max(share, 2.0);  // infeasible marker
      return;
    }
    share = std::max(share,
                     static_cast<double>(req) / static_cast<double>(cap));
  };
  dim(cpu_millicores, capacity.cpu_millicores);
  dim(memory_bytes, capacity.memory_bytes);
  dim(accel_slots, capacity.accel_slots);
  return share;
}

std::string Resources::to_string() const {
  std::ostringstream out;
  out << "cpu=" << cpu_millicores << "m mem=" << util::human_bytes(memory_bytes)
      << " accel=" << accel_slots;
  return out.str();
}

Resources cpu_mem(std::int64_t millicores, util::Bytes memory) {
  return Resources{millicores, memory, 0};
}

Resources cpu_mem_accel(std::int64_t millicores, util::Bytes memory,
                        std::int64_t accel) {
  return Resources{millicores, memory, accel};
}

}  // namespace evolve::cluster
