// Node hardware model: cores, DRAM, storage devices, rack placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/resources.hpp"
#include "util/types.hpp"

namespace evolve::cluster {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// One storage device class on a node (DRAM tier, NVMe, HDD).
struct StorageDeviceSpec {
  std::string name;               // "dram", "nvme", "hdd"
  util::Bytes capacity = 0;       // usable bytes
  double read_bw_bytes_per_s = 0;
  double write_bw_bytes_per_s = 0;
  util::TimeNs access_latency = 0;  // per-request fixed cost
};

/// Static description of a node.
struct NodeSpec {
  std::string name;
  int cores = 0;
  double core_speed = 1.0;  // relative CPU speed multiplier
  util::Bytes dram = 0;
  int accel_devices = 0;    // physical FPGA cards
  int rack = 0;
  std::vector<StorageDeviceSpec> devices;  // ordered fast -> slow
  std::vector<std::string> labels;         // scheduler-visible labels

  /// Allocatable resource vector derived from the hardware
  /// (1000 millicores per core; one schedulable slot per accel device is
  /// refined by the accel pool's virtualization factor).
  Resources allocatable(int accel_slots_per_device = 1) const;

  const StorageDeviceSpec* device(const std::string& device_name) const;
  bool has_label(const std::string& label) const;
};

/// Standard node flavors used across the benchmarks. These follow the
/// EVOLVE testbed's mix: fat compute nodes, storage-heavy nodes, and
/// FPGA-equipped accelerator nodes.
NodeSpec make_compute_node(const std::string& name, int rack);
NodeSpec make_storage_node(const std::string& name, int rack);
NodeSpec make_accel_node(const std::string& name, int rack);

}  // namespace evolve::cluster
