#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::cluster {

NodeId Cluster::add_node(NodeSpec spec) {
  if (spec.cores <= 0) throw std::invalid_argument("node must have cores");
  if (spec.rack < 0) throw std::invalid_argument("rack must be >= 0");
  nodes_.push_back(std::move(spec));
  return static_cast<NodeId>(nodes_.size() - 1);
}

const NodeSpec& Cluster::node(NodeId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("bad node id");
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId Cluster::find(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return kInvalidNode;
}

std::vector<NodeId> Cluster::nodes_with_label(const std::string& label) const {
  std::vector<NodeId> out;
  for (int i = 0; i < size(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].has_label(label)) {
      out.push_back(i);
    }
  }
  return out;
}

int Cluster::rack_count() const {
  int max_rack = -1;
  for (const auto& node : nodes_) max_rack = std::max(max_rack, node.rack);
  return max_rack + 1;
}

Resources Cluster::total_allocatable(int accel_slots_per_device) const {
  Resources total;
  for (const auto& node : nodes_) {
    total += node.allocatable(accel_slots_per_device);
  }
  return total;
}

Cluster make_testbed(int compute, int storage, int accel, int racks) {
  if (racks <= 0) throw std::invalid_argument("racks must be > 0");
  Cluster cluster;
  int next = 0;
  for (int i = 0; i < compute; ++i, ++next) {
    cluster.add_node(
        make_compute_node("compute-" + std::to_string(i), next % racks));
  }
  for (int i = 0; i < storage; ++i, ++next) {
    cluster.add_node(
        make_storage_node("storage-" + std::to_string(i), next % racks));
  }
  for (int i = 0; i < accel; ++i, ++next) {
    cluster.add_node(
        make_accel_node("accel-" + std::to_string(i), next % racks));
  }
  return cluster;
}

}  // namespace evolve::cluster
