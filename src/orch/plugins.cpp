#include "orch/plugins.hpp"

#include <algorithm>
#include <cmath>

namespace evolve::orch {

bool ResourceFitFilter::feasible(const PodSpec& pod,
                                 const cluster::NodeSpec& /*spec*/,
                                 const NodeStatus& node) const {
  return node.fits(pod.request);
}

bool NodeSelectorFilter::feasible(const PodSpec& pod,
                                  const cluster::NodeSpec& spec,
                                  const NodeStatus& /*node*/) const {
  for (const auto& label : pod.node_selector) {
    if (!spec.has_label(label)) return false;
  }
  return true;
}

namespace {

/// Fraction of the node's capacity used after placing the pod, averaged
/// over CPU and memory (accel ignored: it is all-or-nothing).
double used_fraction(const PodSpec& pod, const NodeStatus& node,
                     double* cpu_out = nullptr, double* mem_out = nullptr) {
  const auto& cap = node.allocatable();
  const auto after = node.allocated() + pod.request;
  const double cpu =
      cap.cpu_millicores > 0
          ? static_cast<double>(after.cpu_millicores) /
                static_cast<double>(cap.cpu_millicores)
          : 0.0;
  const double mem = cap.memory_bytes > 0
                         ? static_cast<double>(after.memory_bytes) /
                               static_cast<double>(cap.memory_bytes)
                         : 0.0;
  if (cpu_out) *cpu_out = cpu;
  if (mem_out) *mem_out = mem;
  return (cpu + mem) / 2.0;
}

}  // namespace

double LeastAllocatedScore::score(const PodSpec& pod,
                                  const cluster::NodeSpec& /*spec*/,
                                  const NodeStatus& node) const {
  return 1.0 - std::clamp(used_fraction(pod, node), 0.0, 1.0);
}

double MostAllocatedScore::score(const PodSpec& pod,
                                 const cluster::NodeSpec& /*spec*/,
                                 const NodeStatus& node) const {
  return std::clamp(used_fraction(pod, node), 0.0, 1.0);
}

double BalancedAllocationScore::score(const PodSpec& pod,
                                      const cluster::NodeSpec& /*spec*/,
                                      const NodeStatus& node) const {
  double cpu = 0, mem = 0;
  used_fraction(pod, node, &cpu, &mem);
  return 1.0 - std::min(1.0, std::abs(cpu - mem));
}

double LocalityScore::score(const PodSpec& pod,
                            const cluster::NodeSpec& /*spec*/,
                            const NodeStatus& node) const {
  if (pod.preferred_nodes.empty()) return 0.0;
  for (cluster::NodeId preferred : pod.preferred_nodes) {
    if (preferred == node.id()) return 1.0;
  }
  // Same rack as any preferred node earns partial credit.
  const int rack = cluster_.node(node.id()).rack;
  for (cluster::NodeId preferred : pod.preferred_nodes) {
    if (cluster_.node(preferred).rack == rack) return 0.5;
  }
  return 0.0;
}

double PodSpreadScore::score(const PodSpec& /*pod*/,
                             const cluster::NodeSpec& /*spec*/,
                             const NodeStatus& node) const {
  return 1.0 / (1.0 + static_cast<double>(node.pod_count()));
}

SchedulingPolicy SchedulingPolicy::spreading(const cluster::Cluster& cluster) {
  SchedulingPolicy policy;
  policy.filters.push_back(std::make_shared<ResourceFitFilter>());
  policy.filters.push_back(std::make_shared<NodeSelectorFilter>());
  policy.scorers.emplace_back(std::make_shared<LeastAllocatedScore>(), 1.0);
  policy.scorers.emplace_back(std::make_shared<BalancedAllocationScore>(), 0.5);
  policy.scorers.emplace_back(std::make_shared<LocalityScore>(cluster), 2.0);
  policy.scorers.emplace_back(std::make_shared<PodSpreadScore>(), 0.25);
  return policy;
}

SchedulingPolicy SchedulingPolicy::binpacking(
    const cluster::Cluster& cluster) {
  SchedulingPolicy policy;
  policy.filters.push_back(std::make_shared<ResourceFitFilter>());
  policy.filters.push_back(std::make_shared<NodeSelectorFilter>());
  policy.scorers.emplace_back(std::make_shared<MostAllocatedScore>(), 1.0);
  policy.scorers.emplace_back(std::make_shared<LocalityScore>(cluster), 2.0);
  return policy;
}

}  // namespace evolve::orch
