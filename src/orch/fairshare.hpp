// Hierarchical fair-share pool tree (ytsaurus-style).
//
// Tenants map onto leaf pools arranged in a tree under an implicit root.
// Each pool has a weight (relative share of its parent), an optional
// guarantee (a resource floor it may always claim) and an optional limit
// (a resource ceiling it may never exceed). Fair share is computed in
// dominant-resource space: every resource vector collapses to its
// dominant fraction of cluster capacity (DRF), and each level of the
// tree splits the parent's fraction across its children by weighted
// water-filling — demand-capped, guarantee-floored, limit-clamped, with
// unused share flowing to siblings that still want it.
//
// The scheduler orders pending pods by their pool's usage/fair-share
// ratio (most starved first) and uses over_fair_share() to pick
// preemption victims; the batch queue reuses the same tree so batch,
// HPC, and serving tenants contend in one share space.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/resources.hpp"
#include "util/types.hpp"

namespace evolve::orch {

struct PoolConfig {
  std::string name;
  /// Parent pool name; empty = directly under the root.
  std::string parent = {};
  /// Relative share of the parent's fraction (> 0).
  double weight = 1.0;
  /// Resource floor: the pool may always claim at least this much even
  /// when its weight share is smaller. Zero = no guarantee.
  cluster::Resources guarantee = {};
  /// Resource ceiling: fair share and admission never exceed it.
  /// Zero = unlimited.
  cluster::Resources limit = {};
};

class PoolTree {
 public:
  /// Total schedulable capacity the shares are fractions of. Must be set
  /// (the orchestrator sets it from its managed nodes on attach).
  void set_capacity(cluster::Resources capacity);
  const cluster::Resources& capacity() const { return capacity_; }

  /// Adds a pool. The parent must already exist (or be "" for root).
  void add_pool(PoolConfig config);
  bool has_pool(const std::string& name) const;

  /// Maps a tenant onto a leaf pool. Unmapped tenants land in an
  /// auto-created weight-1 pool named after the tenant, under the root.
  void assign_tenant(const std::string& tenant, const std::string& pool);

  /// Live-usage accounting (running pods / jobs).
  void charge(const std::string& tenant, const cluster::Resources& usage);
  void release(const std::string& tenant, const cluster::Resources& usage);
  /// Pending-demand accounting (queued pods / jobs). Demand plus usage
  /// caps a pool's fair share, so idle pools donate to busy ones.
  void add_demand(const std::string& tenant, const cluster::Resources& demand);
  void remove_demand(const std::string& tenant,
                     const cluster::Resources& demand);

  /// Recomputes every pool's fair-share fraction (call once per
  /// scheduling pass; cost is O(pools * depth)).
  void recompute();

  // -- Time-decayed (EWMA) historical usage ---------------------------
  /// Enables historical-usage tracking: each pool keeps an EWMA of its
  /// occupancy fraction whose weight halves every `halflife`. With a
  /// halflife set, schedule_key() charges a pool the *max* of its
  /// instantaneous and historical fraction, so a tenant that just
  /// finished a burst decays back to parity instead of instantly
  /// jumping the queue. 0 (default) = off: instantaneous usage only,
  /// bit-identical to the untracked behavior.
  void set_usage_halflife(util::TimeNs halflife) { halflife_ = halflife; }
  /// Folds elapsed time into every pool's EWMA (the scheduler calls
  /// this once per pass; extra calls are cheap and idempotent at a
  /// fixed timestamp).
  void advance_time(util::TimeNs now);
  /// The tenant's pool's EWMA occupancy fraction (0 until tracked).
  double historical_fraction(const std::string& tenant) const;

  /// Dominant-resource fractions of cluster capacity. fair_fraction is
  /// only meaningful after recompute().
  double usage_fraction(const std::string& tenant) const;
  double demand_fraction(const std::string& tenant) const;
  double fair_fraction(const std::string& tenant) const;

  /// usage / fair-share: < 1 under-served, > 1 over-served. Pools with a
  /// zero fair share report a large sentinel so they order last.
  double schedule_key(const std::string& tenant) const;

  /// True when the tenant's pool consumes strictly more than its fair
  /// share (preemption-victim eligibility). `headroom` subtracts usage
  /// about to be released (tentative evictions in the current pass).
  bool over_fair_share(const std::string& tenant,
                       const cluster::Resources& headroom = {}) const;

  /// True when the tenant's pool (and every ancestor with a limit) can
  /// absorb `request` without exceeding its limit.
  bool within_limit(const std::string& tenant,
                    const cluster::Resources& request) const;

  /// Name of the pool the tenant maps to (the tenant name itself when
  /// the tenant is unmapped — its pool is auto-created on first use).
  std::string pool_of(const std::string& tenant) const;

  std::vector<std::string> pools() const;
  cluster::Resources pool_usage(const std::string& pool) const;

 private:
  struct Pool {
    PoolConfig config;
    std::size_t parent = 0;
    std::vector<std::size_t> children;
    cluster::Resources usage;
    cluster::Resources demand;
    double fair = 0.0;  // fraction of cluster capacity, post-recompute
    double hist = 0.0;  // EWMA occupancy fraction (halflife-decayed)
    bool leaf() const { return children.empty(); }
  };

  std::size_t index_of(const std::string& pool) const;
  /// Index of the tenant's pool, auto-creating a weight-1 pool under the
  /// root on first use. `find_tenant` is the lookup-only const variant
  /// (returns npos when the tenant has never been seen).
  std::size_t ensure_tenant(const std::string& tenant);
  std::size_t find_tenant(const std::string& tenant) const;
  /// Subtree dominant-share fractions (usage, usage+demand).
  double subtree_usage_fraction(std::size_t pool) const;
  double subtree_wanted_fraction(std::size_t pool) const;
  /// Splits `fraction` among `node`'s children by weighted water-filling
  /// and recurses.
  void distribute(std::size_t node, double fraction);
  double fraction_of(const cluster::Resources& r) const;

  cluster::Resources capacity_;
  std::vector<Pool> pools_;                  // pools_[0] is the root
  std::map<std::string, std::size_t> by_name_;
  std::map<std::string, std::size_t> tenant_pool_;
  util::TimeNs halflife_ = 0;   // 0 = historical usage off
  util::TimeNs hist_last_ = 0;  // EWMAs folded up to this timestamp
};

}  // namespace evolve::orch
