#include "orch/rebalancer.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace evolve::orch {

Rebalancer::Rebalancer(sim::Simulation& sim, Orchestrator& orch,
                       RebalancerConfig config)
    : sim_(sim), orch_(orch), config_(config) {}

void Rebalancer::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void Rebalancer::stop() { running_ = false; }

void Rebalancer::schedule_next() {
  if (!running_ || tick_scheduled_) return;
  tick_scheduled_ = true;
  sim_.after(config_.interval, [this] {
    tick_scheduled_ = false;
    if (!running_) return;
    round_now();
    schedule_next();
  });
}

int Rebalancer::round_now() {
  ++rounds_;
  orch_.metrics().count("rebalance_rounds");
  trace::Tracer* tracer = orch_.tracer();
  const trace::SpanId span =
      trace::begin_span(tracer, trace::Layer::kScheduler, "orch.rebalance");

  int evicted = 0;
  int considered = 0;
  const util::TimeNs now = sim_.now();
  for (PodId pending : orch_.pending_snapshot()) {
    if (evicted >= config_.max_evictions_per_round) break;
    if (considered >= config_.max_starving_considered) break;
    const PodStatus& status = orch_.pod(pending);
    if (status.phase != PodPhase::kPending) continue;
    if (now - status.submit_time < config_.starvation_threshold) continue;
    ++considered;
    const PodSpec& spec = status.spec;

    // A swap target: a node where exactly one movable pod blocks the
    // starving pod, and that pod provably fits elsewhere right now.
    struct Move {
      double size = 0;  // victim dominant share (move the smallest)
      PodId victim = kInvalidPod;
    };
    Move best;
    for (cluster::NodeId node : orch_.managed_nodes()) {
      const NodeStatus& ns = orch_.node_status(node);
      if (!ns.allocatable().fits(spec.request)) continue;
      if (ns.free().fits(spec.request)) continue;  // blocked by a filter,
                                                   // not by capacity
      for (PodId pid : ns.pods()) {
        const PodStatus& victim = orch_.pod(pid);
        // Only controller-managed pods move (they get recreated); the
        // budget gate keeps the controller's availability floor.
        if (victim.spec.budget_group.empty()) continue;
        if (!orch_.disruption_allowed(victim.spec.budget_group)) continue;
        cluster::Resources freed = ns.free() + victim.spec.request;
        if (!freed.fits(spec.request)) continue;
        if (orch_.feasible_node_for(victim.spec, node) ==
            cluster::kInvalidNode) {
          continue;
        }
        const double size =
            victim.spec.request.dominant_share(ns.allocatable());
        if (best.victim == kInvalidPod || size < best.size ||
            (size == best.size && pid > best.victim)) {
          best = {size, pid};
        }
      }
    }
    ++moves_considered_;
    if (best.victim == kInvalidPod) continue;
    if (orch_.evict_for_rebalance(best.victim)) {
      ++evicted;
      ++evictions_;
    }
  }

  if (tracer && span != trace::kNoSpan) {
    tracer->annotate(span, "evictions", std::to_string(evicted));
    trace::end_span(tracer, span);
  }
  return evicted;
}

}  // namespace evolve::orch
