// The orchestrator: pod admission, queueing, placement, lifecycle.
//
// A periodic scheduling pass drains the pending queue in priority order
// (FIFO within a priority). Gangs are placed all-or-nothing. Optional
// priority preemption evicts lower-priority pods when a high-priority pod
// cannot fit anywhere. With a PoolTree attached the queue is ordered by
// hierarchical fair share instead (most-starved pool first) and, when
// enabled, pods of under-served pools may preempt pods of pools running
// over their fair share. All voluntary evictions are gated by per-group
// disruption budgets.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "metrics/timeseries.hpp"
#include "orch/fairshare.hpp"
#include "orch/node_status.hpp"
#include "orch/plugins.hpp"
#include "orch/pod.hpp"
#include "orch/quota.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"

namespace evolve::orch {

/// Caps voluntary disruption (preemption, rebalancing) of a pod group —
/// typically the replicas of one controller. Involuntary evictions
/// (node failure, drain) are not budgeted.
struct DisruptionBudget {
  /// Max voluntary evictions within any trailing `window`.
  int max_evictions_per_window = 1;
  util::TimeNs window = util::seconds(1);
  /// At least this many group members must stay running after an
  /// eviction (0 = the whole group may be disrupted).
  int min_available = 0;
};

struct OrchestratorConfig {
  util::TimeNs scheduling_interval = util::millis(10);
  util::TimeNs bind_latency = util::millis(50);  // image pull + start
  int accel_slots_per_device = 1;
  bool enable_preemption = false;
  /// With a PoolTree attached: pods of pools below their fair share may
  /// preempt pods (of equal or lower priority) from pools above theirs.
  /// Requires enable_preemption.
  bool enable_fair_preemption = false;
  /// Nodes this orchestrator manages; empty = the whole cluster.
  /// Siloed (partitioned) deployments give each silo its own subset.
  std::vector<cluster::NodeId> nodes;
};

/// Pure placement: filters then weighted scores; ties break to the lowest
/// node id. Returns kInvalidNode when no node is feasible.
cluster::NodeId select_node(const PodSpec& pod,
                            const cluster::Cluster& cluster,
                            const std::vector<NodeStatus>& nodes,
                            const SchedulingPolicy& policy);

class Orchestrator {
 public:
  using StartFn = std::function<void(PodId, cluster::NodeId)>;
  using FinishFn = std::function<void(PodId, PodPhase)>;

  Orchestrator(sim::Simulation& sim, const cluster::Cluster& cluster,
               SchedulingPolicy policy, OrchestratorConfig config = {});

  /// Submits a pod. If `duration` >= 0 the pod auto-finishes that long
  /// after it starts; if negative it runs until finish() is called.
  /// Returns kInvalidPod when the tenant quota rejects admission.
  PodId submit(PodSpec spec, util::TimeNs duration, StartFn on_start = {},
               FinishFn on_finish = {});

  /// Submits a gang: the pods are placed all-or-nothing in one pass.
  /// Returns the pod ids ({} if quota rejects the whole gang).
  std::vector<PodId> submit_gang(std::vector<PodSpec> specs,
                                 util::TimeNs duration, StartFn on_start = {},
                                 FinishFn on_finish = {});

  /// Marks a running pod finished, releasing its resources.
  void finish(PodId id);

  /// Cancels a pending pod or kills a running one (phase -> Failed).
  bool cancel(PodId id);

  const PodStatus& pod(PodId id) const;
  const NodeStatus& node_status(cluster::NodeId node) const;
  const cluster::Cluster& cluster() const { return cluster_; }

  int pending_count() const { return static_cast<int>(queue_.size()); }
  int running_count() const { return running_count_; }

  QuotaManager& quotas() { return quotas_; }
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Attaches a (non-owned) fair-share pool tree: queue ordering becomes
  /// most-starved-pool-first, pending/live usage is accounted per pool,
  /// and enable_fair_preemption may evict over-share pods. If the tree's
  /// capacity is unset it is initialized from the managed nodes.
  void attach_pool_tree(PoolTree* tree);
  PoolTree* pool_tree() { return pool_tree_; }

  /// Registers (or replaces) the disruption budget for a pod group
  /// (PodSpec::budget_group). Groups without a budget are unprotected.
  void set_disruption_budget(const std::string& group,
                             DisruptionBudget budget);
  /// True when the group can absorb one more voluntary eviction right
  /// now (window cap not hit, min_available preserved).
  bool disruption_allowed(const std::string& group) const;

  /// Voluntary eviction on behalf of the background rebalancer: gated by
  /// the victim's disruption budget; the owning controller is expected
  /// to recreate the pod elsewhere. False when refused.
  bool evict_for_rebalance(PodId victim);

  /// Pending queue snapshot in submit order (rebalancer input).
  std::vector<PodId> pending_snapshot() const;
  /// Managed node ids, ascending.
  std::vector<cluster::NodeId> managed_nodes() const;
  /// Best feasible node for `spec` under the current policy, skipping
  /// `exclude`; kInvalidNode when nothing fits.
  cluster::NodeId feasible_node_for(const PodSpec& spec,
                                    cluster::NodeId exclude =
                                        cluster::kInvalidNode) const;

  /// Time-weighted CPU/memory utilization of the whole cluster since t=0.
  double cpu_utilization() const;
  double memory_utilization() const;
  /// Time-weighted mean of allocated CPU millicores (energy accounting).
  double mean_cpu_millicores() const;

  /// Marks a node unschedulable (existing pods keep running).
  void cordon(cluster::NodeId node);
  /// Makes a cordoned node schedulable again.
  void uncordon(cluster::NodeId node);
  bool is_cordoned(cluster::NodeId node) const;
  /// Cordons the node and evicts every pod on it (phase -> Failed, so
  /// controllers recreate them elsewhere). Models planned maintenance.
  void drain(cluster::NodeId node);

  /// True when this orchestrator manages `node`.
  bool manages(cluster::NodeId node) const;
  /// Node crash: marks the node NotReady (unschedulable until recovery)
  /// and evicts every pod on it. Distinct from cordon() so a manual
  /// cordon survives a failure/recovery cycle.
  void fail_node(cluster::NodeId node);
  /// Crash recovery: the node becomes schedulable and the queue re-pumps.
  void recover_node(cluster::NodeId node);
  bool is_ready(cluster::NodeId node) const;

  /// Health quarantine: the node stops receiving new pods but existing
  /// pods keep running (it drains). Distinct from cordon() (operator
  /// action) and NotReady (crash) so the three lifecycles compose.
  void quarantine(cluster::NodeId node);
  void unquarantine(cluster::NodeId node);
  bool is_quarantined(cluster::NodeId node) const;

  /// Partition liveness (driven by LeaseManager): an Unreachable node is
  /// unschedulable but its pods are *fenced in place*, not evicted — the
  /// node may still be running them on the far side of a partition.
  /// Distinct from NotReady (crash: pods evicted immediately) so a short
  /// partition heals without a pod massacre.
  void mark_unreachable(cluster::NodeId node);
  void clear_unreachable(cluster::NodeId node);
  bool is_unreachable(cluster::NodeId node) const;
  /// The lease grace elapsed without a reconnect: give up on the fenced
  /// pods and evict them so controllers reschedule elsewhere.
  void expire_unreachable(cluster::NodeId node);

  /// Attaches a span tracer: each pod gets a kScheduler wait span
  /// (submit -> placed) and, for auto-finishing pods, a kCloud run span
  /// (placed -> terminal). Preemptions emit orch.preempt spans. Null
  /// disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Runs one scheduling pass immediately (also runs periodically).
  void schedule_now();

  /// Stops the periodic scheduling loop (call when the experiment ends,
  /// so the simulation can drain).
  void shutdown();

 private:
  struct PodRecord {
    PodStatus status;
    util::TimeNs duration = -1;
    StartFn on_start;
    FinishFn on_finish;
    trace::SpanId wait_span = trace::kNoSpan;
    trace::SpanId run_span = trace::kNoSpan;
  };

  /// Opens the kScheduler wait span for a just-submitted pod.
  void trace_submit(PodRecord& rec);

  PodRecord& record(PodId id);
  NodeStatus& status_for(cluster::NodeId node);
  void enqueue(PodId id);
  void kick_pump();
  void place(PodRecord& rec, cluster::NodeId node);
  void complete(PodId id, PodPhase phase);
  void evict_pods(cluster::NodeId node);
  /// A gang member failed: the surviving members are killed too
  /// (all-or-nothing gangs have all-or-nothing lifetimes).
  void fail_gang_of(const PodRecord& rec);
  bool try_schedule_gang(GangId gang, std::vector<PodId>& gang_pods);
  bool try_preempt_for(const PodRecord& rec);
  /// Budget check with `tentative` evictions already chosen against the
  /// group in the current decision.
  bool disruption_allowed(const std::string& group, int tentative) const;
  void note_eviction(const std::string& group);
  /// Drops every non-pending pod from the queue in one O(n) pass.
  void compact_queue();
  void pump();

  sim::Simulation& sim_;
  const cluster::Cluster& cluster_;
  SchedulingPolicy policy_;
  OrchestratorConfig config_;
  std::vector<NodeStatus> nodes_;
  std::map<cluster::NodeId, std::size_t> node_index_;
  std::set<cluster::NodeId> cordoned_;
  std::set<cluster::NodeId> not_ready_;  // crashed, awaiting recovery
  std::set<cluster::NodeId> quarantined_;  // health-flagged, draining
  std::set<cluster::NodeId> unreachable_;  // lease expired, pods fenced
  std::map<cluster::NodeId, util::TimeNs> not_ready_since_;
  std::set<GangId> gangs_failing_;  // re-entrancy guard for gang kills
  /// Live pod count per (node, anti-affinity group).
  std::map<std::pair<cluster::NodeId, std::string>, int> affinity_counts_;
  std::map<PodId, PodRecord> pods_;
  std::deque<PodId> queue_;
  QuotaManager quotas_;
  PoolTree* pool_tree_ = nullptr;  // non-owned fair-share state
  struct BudgetState {
    DisruptionBudget budget;
    std::deque<util::TimeNs> recent;  // eviction timestamps, pruned lazily
  };
  std::map<std::string, BudgetState> budgets_;
  std::map<std::string, int> group_running_;  // live pods per budget group
  metrics::Registry metrics_;
  metrics::UsageTracker cpu_usage_;
  metrics::UsageTracker mem_usage_;
  PodId next_pod_ = 1;
  GangId next_gang_ = 1;
  int running_count_ = 0;
  bool pump_scheduled_ = false;
  bool shutdown_ = false;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace evolve::orch
