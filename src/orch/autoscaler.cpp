#include "orch/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evolve::orch {

HorizontalAutoscaler::HorizontalAutoscaler(sim::Simulation& sim,
                                           DeploymentController& deployment,
                                           std::function<double()> load,
                                           AutoscalerConfig config)
    : sim_(sim),
      deployment_(deployment),
      load_(std::move(load)),
      config_(config) {
  if (config_.capacity_per_replica <= 0) {
    throw std::invalid_argument("capacity_per_replica must be > 0");
  }
  if (config_.target_utilization <= 0 || config_.target_utilization > 1) {
    throw std::invalid_argument("target_utilization must be in (0, 1]");
  }
  if (config_.min_replicas < 0 ||
      config_.max_replicas < config_.min_replicas) {
    throw std::invalid_argument("bad replica bounds");
  }
  if (!load_) throw std::invalid_argument("autoscaler needs a load signal");
}

int HorizontalAutoscaler::recommend(double load) const {
  const double per_replica =
      config_.capacity_per_replica * config_.target_utilization;
  const int want = static_cast<int>(std::ceil(load / per_replica));
  return std::clamp(want, config_.min_replicas, config_.max_replicas);
}

void HorizontalAutoscaler::reconcile() {
  const int want = recommend(load_());
  last_recommendation_ = want;
  const util::TimeNs now = sim_.now();
  history_.emplace_back(now, want);
  while (!history_.empty() &&
         history_.front().first < now - config_.scale_down_window) {
    history_.pop_front();
  }
  const int current = deployment_.desired();
  if (want > current) {
    // Scale up immediately.
    deployment_.scale(want);
    ++scale_ups_;
    return;
  }
  if (want < current) {
    // Scale down only to the max recommendation over the window
    // (prevents flapping on a transient dip).
    int window_max = want;
    for (const auto& [t, rec] : history_) window_max = std::max(window_max, rec);
    if (window_max < current) {
      deployment_.scale(window_max);
      ++scale_downs_;
    }
  }
}

void HorizontalAutoscaler::start() {
  if (running_) return;
  running_ = true;
  // Periodic loop; each tick re-arms itself while running.
  struct Loop {
    HorizontalAutoscaler* self;
    void operator()() const {
      if (!self->running_) return;
      self->reconcile();
      self->sim_.after(self->config_.interval, Loop{self});
    }
  };
  sim_.after(config_.interval, Loop{this});
}

void HorizontalAutoscaler::stop() { running_ = false; }

}  // namespace evolve::orch
