// Controllers: reconcile desired state on top of the Orchestrator.
//
// DeploymentController keeps N replicas of a pod template running
// (recreating failed/preempted replicas). JobController runs a fixed
// number of completions with bounded parallelism.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "orch/scheduler.hpp"

namespace evolve::orch {

class DeploymentController {
 public:
  /// Fired when a replica pod starts running on a node (`up == true`)
  /// and when it leaves (finished, evicted, or scaled down). Pending
  /// pods that never started produce no events.
  using ReplicaObserver =
      std::function<void(PodId, cluster::NodeId, bool up)>;

  DeploymentController(Orchestrator& orch, std::string name, PodSpec base,
                       int replicas);

  /// Changes the desired replica count; reconciles immediately.
  void scale(int replicas);

  /// Registers a disruption budget for this deployment's replicas
  /// (budget group = the deployment's pod budget_group, default: name).
  void set_disruption_budget(DisruptionBudget budget);

  /// Stops all replicas and holds the deployment at zero.
  void stop();

  /// Installs the observer and replays every currently-running replica
  /// as an `up` event, so late subscribers see a complete picture.
  void set_replica_observer(ReplicaObserver observer);

  int desired() const { return desired_; }
  int live() const { return static_cast<int>(live_.size()); }
  int running() const { return static_cast<int>(started_.size()); }
  const std::string& name() const { return name_; }
  std::int64_t restarts() const { return restarts_; }

 private:
  void reconcile();
  PodSpec replica_spec();
  PodId pick_scale_down_victim() const;
  void notify(PodId pod, cluster::NodeId node, bool up);

  Orchestrator& orch_;
  std::string name_;
  PodSpec base_;
  int desired_ = 0;
  int next_index_ = 0;
  std::int64_t restarts_ = 0;
  bool stopped_ = false;
  std::set<PodId> live_;  // pods submitted and not yet terminal
  std::map<PodId, cluster::NodeId> started_;  // running replicas
  ReplicaObserver observer_;
};

class JobController {
 public:
  /// `completions` pods of `duration` each, at most `parallelism` in
  /// flight. `on_complete` fires when the last pod succeeds.
  JobController(Orchestrator& orch, std::string name, PodSpec base,
                int completions, int parallelism, util::TimeNs duration,
                std::function<void()> on_complete = {});

  void start();

  int succeeded() const { return succeeded_; }
  int failed() const { return failed_; }
  bool done() const { return succeeded_ >= completions_; }
  const std::string& name() const { return name_; }

 private:
  void launch_next();

  Orchestrator& orch_;
  std::string name_;
  PodSpec base_;
  int completions_;
  int parallelism_;
  util::TimeNs duration_;
  std::function<void()> on_complete_;
  int launched_ = 0;
  int in_flight_ = 0;
  int succeeded_ = 0;
  int failed_ = 0;
  bool started_ = false;
};

}  // namespace evolve::orch
