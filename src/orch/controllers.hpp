// Controllers: reconcile desired state on top of the Orchestrator.
//
// DeploymentController keeps N replicas of a pod template running
// (recreating failed/preempted replicas). JobController runs a fixed
// number of completions with bounded parallelism.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "orch/scheduler.hpp"

namespace evolve::orch {

class DeploymentController {
 public:
  DeploymentController(Orchestrator& orch, std::string name, PodSpec base,
                       int replicas);

  /// Changes the desired replica count; reconciles immediately.
  void scale(int replicas);

  /// Stops all replicas and holds the deployment at zero.
  void stop();

  int desired() const { return desired_; }
  int live() const { return static_cast<int>(live_.size()); }
  const std::string& name() const { return name_; }
  std::int64_t restarts() const { return restarts_; }

 private:
  void reconcile();
  PodSpec replica_spec();

  Orchestrator& orch_;
  std::string name_;
  PodSpec base_;
  int desired_ = 0;
  int next_index_ = 0;
  std::int64_t restarts_ = 0;
  bool stopped_ = false;
  std::set<PodId> live_;  // pods submitted and not yet terminal
};

class JobController {
 public:
  /// `completions` pods of `duration` each, at most `parallelism` in
  /// flight. `on_complete` fires when the last pod succeeds.
  JobController(Orchestrator& orch, std::string name, PodSpec base,
                int completions, int parallelism, util::TimeNs duration,
                std::function<void()> on_complete = {});

  void start();

  int succeeded() const { return succeeded_; }
  int failed() const { return failed_; }
  bool done() const { return succeeded_ >= completions_; }
  const std::string& name() const { return name_; }

 private:
  void launch_next();

  Orchestrator& orch_;
  std::string name_;
  PodSpec base_;
  int completions_;
  int parallelism_;
  util::TimeNs duration_;
  std::function<void()> on_complete_;
  int launched_ = 0;
  int in_flight_ = 0;
  int succeeded_ = 0;
  int failed_ = 0;
  bool started_ = false;
};

}  // namespace evolve::orch
