// Per-node scheduling state: allocatable capacity vs bound pods.
#pragma once

#include <set>

#include "cluster/cluster.hpp"
#include "orch/pod.hpp"

namespace evolve::orch {

class NodeStatus {
 public:
  NodeStatus(cluster::NodeId id, cluster::Resources allocatable)
      : id_(id), allocatable_(allocatable) {}

  cluster::NodeId id() const { return id_; }
  const cluster::Resources& allocatable() const { return allocatable_; }
  const cluster::Resources& allocated() const { return allocated_; }
  cluster::Resources free() const { return allocatable_ - allocated_; }

  bool fits(const cluster::Resources& request) const {
    return free().fits(request);
  }

  /// Binds a pod's resources. Throws if it does not fit (scheduler bug).
  void bind(PodId pod, const cluster::Resources& request);

  /// Releases a pod's resources. Throws if the pod is not bound here.
  void unbind(PodId pod, const cluster::Resources& request);

  bool has_pod(PodId pod) const { return pods_.count(pod) != 0; }
  const std::set<PodId>& pods() const { return pods_; }
  int pod_count() const { return static_cast<int>(pods_.size()); }

 private:
  cluster::NodeId id_;
  cluster::Resources allocatable_;
  cluster::Resources allocated_;
  std::set<PodId> pods_;
};

}  // namespace evolve::orch
