#include "orch/quota.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::orch {

void QuotaManager::set_quota(const std::string& tenant,
                             cluster::Resources limit) {
  limits_[tenant] = limit;
}

void QuotaManager::clear_quota(const std::string& tenant) {
  limits_.erase(tenant);
}

std::optional<cluster::Resources> QuotaManager::quota(
    const std::string& tenant) const {
  auto it = limits_.find(tenant);
  if (it == limits_.end()) return std::nullopt;
  return it->second;
}

cluster::Resources QuotaManager::usage(const std::string& tenant) const {
  auto it = usage_.find(tenant);
  return it == usage_.end() ? cluster::Resources{} : it->second;
}

bool QuotaManager::allows(const std::string& tenant,
                          const cluster::Resources& request) const {
  auto it = limits_.find(tenant);
  if (it == limits_.end()) return true;
  // set_quota may lower a limit below live usage; the difference then
  // goes negative in that dimension. Clamp remaining at zero so the
  // tenant is denied until usage drains (instead of feeding a negative
  // vector to fits(), whose meaning is unspecified).
  cluster::Resources remaining = it->second - usage(tenant);
  remaining.cpu_millicores = std::max<std::int64_t>(remaining.cpu_millicores, 0);
  remaining.memory_bytes = std::max<std::int64_t>(remaining.memory_bytes, 0);
  remaining.accel_slots = std::max<std::int64_t>(remaining.accel_slots, 0);
  return remaining.fits(request);
}

void QuotaManager::charge(const std::string& tenant,
                          const cluster::Resources& request) {
  usage_[tenant] += request;
}

void QuotaManager::release(const std::string& tenant,
                           const cluster::Resources& request) {
  auto it = usage_.find(tenant);
  if (it == usage_.end()) {
    // Quota enabled on a cluster with pre-existing pods: their finishes
    // release usage that was never charged. Count, don't throw.
    ++unmatched_releases_;
    return;
  }
  it->second -= request;
  if (it->second.any_negative()) {
    throw std::logic_error("quota release drove usage negative");
  }
}

}  // namespace evolve::orch
