#include "orch/quota.hpp"

#include <stdexcept>

namespace evolve::orch {

void QuotaManager::set_quota(const std::string& tenant,
                             cluster::Resources limit) {
  limits_[tenant] = limit;
}

void QuotaManager::clear_quota(const std::string& tenant) {
  limits_.erase(tenant);
}

std::optional<cluster::Resources> QuotaManager::quota(
    const std::string& tenant) const {
  auto it = limits_.find(tenant);
  if (it == limits_.end()) return std::nullopt;
  return it->second;
}

cluster::Resources QuotaManager::usage(const std::string& tenant) const {
  auto it = usage_.find(tenant);
  return it == usage_.end() ? cluster::Resources{} : it->second;
}

bool QuotaManager::allows(const std::string& tenant,
                          const cluster::Resources& request) const {
  auto it = limits_.find(tenant);
  if (it == limits_.end()) return true;
  const cluster::Resources remaining = it->second - usage(tenant);
  return remaining.fits(request);
}

void QuotaManager::charge(const std::string& tenant,
                          const cluster::Resources& request) {
  usage_[tenant] += request;
}

void QuotaManager::release(const std::string& tenant,
                           const cluster::Resources& request) {
  auto it = usage_.find(tenant);
  if (it == usage_.end()) {
    throw std::logic_error("release for tenant with no usage");
  }
  it->second -= request;
  if (it->second.any_negative()) {
    throw std::logic_error("quota release drove usage negative");
  }
}

}  // namespace evolve::orch
