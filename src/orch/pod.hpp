// Pod model: the orchestrator's unit of placement (Kubernetes-style).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/resources.hpp"
#include "cluster/node.hpp"
#include "util/types.hpp"

namespace evolve::orch {

using PodId = std::int64_t;
inline constexpr PodId kInvalidPod = -1;

/// Gang identifier: pods sharing a gang id are placed all-or-nothing
/// (MPI-style co-scheduling). 0 means "no gang".
using GangId = std::int64_t;

enum class PodPhase {
  kPending,    // queued, not placed
  kRunning,    // bound to a node
  kSucceeded,  // finished normally
  kFailed,     // preempted or admission-rejected
};

struct PodSpec {
  std::string name;
  std::string tenant = "default";     // quota accounting unit
  cluster::Resources request;         // per-pod resource demand
  std::vector<std::string> node_selector;  // all labels must match
  std::vector<cluster::NodeId> preferred_nodes;  // data-locality hint
  int priority = 0;                   // higher = more important
  GangId gang = 0;
  /// Pods sharing a non-empty group never co-locate on one node
  /// (hard anti-affinity, e.g. replica spreading for availability).
  std::string anti_affinity_group;
  /// Disruption-budget group (typically the owning controller's name).
  /// Voluntary evictions — preemption and rebalancing — are gated by the
  /// group's DisruptionBudget; empty = no budget, freely evictable.
  std::string budget_group;
};

struct PodStatus {
  PodId id = kInvalidPod;
  PodSpec spec;
  PodPhase phase = PodPhase::kPending;
  cluster::NodeId node = cluster::kInvalidNode;
  util::TimeNs submit_time = 0;
  util::TimeNs start_time = -1;
  util::TimeNs finish_time = -1;

  bool is_terminal() const {
    return phase == PodPhase::kSucceeded || phase == PodPhase::kFailed;
  }
};

const char* to_string(PodPhase phase);

}  // namespace evolve::orch
