#include "orch/pod.hpp"

namespace evolve::orch {

const char* to_string(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending: return "Pending";
    case PodPhase::kRunning: return "Running";
    case PodPhase::kSucceeded: return "Succeeded";
    case PodPhase::kFailed: return "Failed";
  }
  return "?";
}

}  // namespace evolve::orch
