#include "orch/controllers.hpp"

#include <stdexcept>

namespace evolve::orch {

DeploymentController::DeploymentController(Orchestrator& orch,
                                           std::string name, PodSpec base,
                                           int replicas)
    : orch_(orch), name_(std::move(name)), base_(std::move(base)) {
  if (replicas < 0) throw std::invalid_argument("replicas must be >= 0");
  // Replicas share one disruption-budget group so preemption and
  // rebalancing can be capped per controller.
  if (base_.budget_group.empty()) base_.budget_group = name_;
  desired_ = replicas;
  reconcile();
}

void DeploymentController::set_disruption_budget(DisruptionBudget budget) {
  orch_.set_disruption_budget(base_.budget_group, budget);
}

PodSpec DeploymentController::replica_spec() {
  PodSpec spec = base_;
  spec.name = name_ + "-" + std::to_string(next_index_++);
  return spec;
}

void DeploymentController::reconcile() {
  if (stopped_) return;
  while (live() < desired_) {
    const PodId id = orch_.submit(
        replica_spec(), /*duration=*/-1,
        [this](PodId pod, cluster::NodeId node) {
          started_[pod] = node;
          notify(pod, node, true);
        },
        [this](PodId pod, PodPhase phase) {
          live_.erase(pod);
          auto it = started_.find(pod);
          if (it != started_.end()) {
            const cluster::NodeId node = it->second;
            started_.erase(it);
            notify(pod, node, false);
          }
          if (phase == PodPhase::kFailed && !stopped_) {
            ++restarts_;
          }
          reconcile();
        });
    if (id == kInvalidPod) return;  // quota-blocked; retry on next event
    live_.insert(id);
  }
  while (live() > desired_) {
    const PodId victim = pick_scale_down_victim();
    live_.erase(victim);
    orch_.finish(victim);
  }
}

PodId DeploymentController::pick_scale_down_victim() const {
  // Prefer evicting replicas that are already compromised: a pod on a
  // NotReady node first, then quarantined, then cordoned, then pods
  // that never got placed, and only then a healthy replica. Ties break
  // on the lowest pod id (the oldest) for determinism.
  PodId best = *live_.begin();
  int best_rank = 1 << 10;
  for (const PodId id : live_) {
    const PodStatus& status = orch_.pod(id);
    int rank = 4;
    if (status.phase == PodPhase::kPending) {
      rank = 3;
    } else if (status.node != cluster::kInvalidNode) {
      if (!orch_.is_ready(status.node)) {
        rank = 0;
      } else if (orch_.is_quarantined(status.node)) {
        rank = 1;
      } else if (orch_.is_cordoned(status.node)) {
        rank = 2;
      }
    }
    if (rank < best_rank) {
      best_rank = rank;
      best = id;
    }
  }
  return best;
}

void DeploymentController::set_replica_observer(ReplicaObserver observer) {
  observer_ = std::move(observer);
  if (!observer_) return;
  for (const auto& [pod, node] : started_) observer_(pod, node, true);
}

void DeploymentController::notify(PodId pod, cluster::NodeId node, bool up) {
  if (observer_) observer_(pod, node, up);
}

void DeploymentController::scale(int replicas) {
  if (replicas < 0) throw std::invalid_argument("replicas must be >= 0");
  desired_ = replicas;
  reconcile();
}

void DeploymentController::stop() {
  stopped_ = true;
  desired_ = 0;
  // Finish everything; callbacks see stopped_ and do not recreate.
  const std::set<PodId> snapshot = live_;
  for (PodId id : snapshot) orch_.finish(id);
  live_.clear();
}

JobController::JobController(Orchestrator& orch, std::string name,
                             PodSpec base, int completions, int parallelism,
                             util::TimeNs duration,
                             std::function<void()> on_complete)
    : orch_(orch),
      name_(std::move(name)),
      base_(std::move(base)),
      completions_(completions),
      parallelism_(parallelism),
      duration_(duration),
      on_complete_(std::move(on_complete)) {
  if (completions <= 0) throw std::invalid_argument("completions must be > 0");
  if (parallelism <= 0) throw std::invalid_argument("parallelism must be > 0");
  if (duration < 0) throw std::invalid_argument("duration must be >= 0");
  if (base_.budget_group.empty()) base_.budget_group = name_;
}

void JobController::start() {
  if (started_) throw std::logic_error("job already started");
  started_ = true;
  launch_next();
}

void JobController::launch_next() {
  while (in_flight_ < parallelism_ && launched_ < completions_) {
    PodSpec spec = base_;
    spec.name = name_ + "-" + std::to_string(launched_);
    ++launched_;
    ++in_flight_;
    const PodId id = orch_.submit(
        spec, duration_, /*on_start=*/{},
        [this](PodId, PodPhase phase) {
          --in_flight_;
          if (phase == PodPhase::kSucceeded) {
            ++succeeded_;
          } else {
            ++failed_;
            --launched_;  // retry failed completions
          }
          if (done()) {
            if (on_complete_) {
              auto cb = std::move(on_complete_);
              on_complete_ = {};
              cb();
            }
            return;
          }
          launch_next();
        });
    if (id == kInvalidPod) {
      // Quota rejection: give the slot back and stop trying this round.
      --launched_;
      --in_flight_;
      return;
    }
  }
}

}  // namespace evolve::orch
