#include "orch/controllers.hpp"

#include <stdexcept>

namespace evolve::orch {

DeploymentController::DeploymentController(Orchestrator& orch,
                                           std::string name, PodSpec base,
                                           int replicas)
    : orch_(orch), name_(std::move(name)), base_(std::move(base)) {
  if (replicas < 0) throw std::invalid_argument("replicas must be >= 0");
  desired_ = replicas;
  reconcile();
}

PodSpec DeploymentController::replica_spec() {
  PodSpec spec = base_;
  spec.name = name_ + "-" + std::to_string(next_index_++);
  return spec;
}

void DeploymentController::reconcile() {
  if (stopped_) return;
  while (live() < desired_) {
    const PodId id = orch_.submit(
        replica_spec(), /*duration=*/-1, /*on_start=*/{},
        [this](PodId pod, PodPhase phase) {
          live_.erase(pod);
          if (phase == PodPhase::kFailed && !stopped_) {
            ++restarts_;
          }
          reconcile();
        });
    if (id == kInvalidPod) return;  // quota-blocked; retry on next event
    live_.insert(id);
  }
  while (live() > desired_) {
    const PodId victim = *live_.begin();
    live_.erase(live_.begin());
    orch_.finish(victim);
  }
}

void DeploymentController::scale(int replicas) {
  if (replicas < 0) throw std::invalid_argument("replicas must be >= 0");
  desired_ = replicas;
  reconcile();
}

void DeploymentController::stop() {
  stopped_ = true;
  desired_ = 0;
  // Finish everything; callbacks see stopped_ and do not recreate.
  const std::set<PodId> snapshot = live_;
  for (PodId id : snapshot) orch_.finish(id);
  live_.clear();
}

JobController::JobController(Orchestrator& orch, std::string name,
                             PodSpec base, int completions, int parallelism,
                             util::TimeNs duration,
                             std::function<void()> on_complete)
    : orch_(orch),
      name_(std::move(name)),
      base_(std::move(base)),
      completions_(completions),
      parallelism_(parallelism),
      duration_(duration),
      on_complete_(std::move(on_complete)) {
  if (completions <= 0) throw std::invalid_argument("completions must be > 0");
  if (parallelism <= 0) throw std::invalid_argument("parallelism must be > 0");
  if (duration < 0) throw std::invalid_argument("duration must be >= 0");
}

void JobController::start() {
  if (started_) throw std::logic_error("job already started");
  started_ = true;
  launch_next();
}

void JobController::launch_next() {
  while (in_flight_ < parallelism_ && launched_ < completions_) {
    PodSpec spec = base_;
    spec.name = name_ + "-" + std::to_string(launched_);
    ++launched_;
    ++in_flight_;
    const PodId id = orch_.submit(
        spec, duration_, /*on_start=*/{},
        [this](PodId, PodPhase phase) {
          --in_flight_;
          if (phase == PodPhase::kSucceeded) {
            ++succeeded_;
          } else {
            ++failed_;
            --launched_;  // retry failed completions
          }
          if (done()) {
            if (on_complete_) {
              auto cb = std::move(on_complete_);
              on_complete_ = {};
              cb();
            }
            return;
          }
          launch_next();
        });
    if (id == kInvalidPod) {
      // Quota rejection: give the slot back and stop trying this round.
      --launched_;
      --in_flight_;
      return;
    }
  }
}

}  // namespace evolve::orch
