#include "orch/fairshare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace evolve::orch {

namespace {

constexpr double kEps = 1e-9;
/// Ordering sentinel for pools with no fair share (no demand): they sort
/// after every pool that actually wants capacity.
constexpr double kIdleKey = 1e18;
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

cluster::Resources clamped_sub(cluster::Resources a,
                               const cluster::Resources& b) {
  a -= b;
  a.cpu_millicores = std::max<std::int64_t>(a.cpu_millicores, 0);
  a.memory_bytes = std::max<std::int64_t>(a.memory_bytes, 0);
  a.accel_slots = std::max<std::int64_t>(a.accel_slots, 0);
  return a;
}

}  // namespace

void PoolTree::set_capacity(cluster::Resources capacity) {
  capacity_ = capacity;
}

double PoolTree::fraction_of(const cluster::Resources& r) const {
  if (r.is_zero()) return 0.0;
  return r.dominant_share(capacity_);
}

void PoolTree::add_pool(PoolConfig config) {
  if (config.name.empty()) {
    throw std::invalid_argument("pool needs a name");
  }
  if (config.weight <= 0) {
    throw std::invalid_argument("pool weight must be > 0");
  }
  if (by_name_.count(config.name) != 0) {
    throw std::invalid_argument("duplicate pool: " + config.name);
  }
  if (pools_.empty()) {
    Pool root;
    root.config.name = "<root>";
    pools_.push_back(root);
  }
  std::size_t parent = 0;
  if (!config.parent.empty()) {
    auto it = by_name_.find(config.parent);
    if (it == by_name_.end()) {
      throw std::invalid_argument("unknown parent pool: " + config.parent);
    }
    parent = it->second;
  }
  Pool pool;
  pool.config = std::move(config);
  pool.parent = parent;
  const std::size_t index = pools_.size();
  by_name_[pool.config.name] = index;
  pools_.push_back(std::move(pool));
  pools_[parent].children.push_back(index);
}

bool PoolTree::has_pool(const std::string& name) const {
  return by_name_.count(name) != 0;
}

void PoolTree::assign_tenant(const std::string& tenant,
                             const std::string& pool) {
  auto it = by_name_.find(pool);
  if (it == by_name_.end()) {
    throw std::invalid_argument("unknown pool: " + pool);
  }
  tenant_pool_[tenant] = it->second;
}

std::size_t PoolTree::index_of(const std::string& pool) const {
  auto it = by_name_.find(pool);
  if (it == by_name_.end()) {
    throw std::invalid_argument("unknown pool: " + pool);
  }
  return it->second;
}

std::size_t PoolTree::ensure_tenant(const std::string& tenant) {
  auto it = tenant_pool_.find(tenant);
  if (it != tenant_pool_.end()) return it->second;
  // Unmapped tenant: give it its own weight-1 pool under the root so it
  // still gets a fair slice rather than free-riding or starving.
  if (by_name_.count(tenant) == 0) {
    PoolConfig config;
    config.name = tenant;
    add_pool(std::move(config));
  }
  const std::size_t index = by_name_.at(tenant);
  tenant_pool_[tenant] = index;
  return index;
}

std::size_t PoolTree::find_tenant(const std::string& tenant) const {
  auto it = tenant_pool_.find(tenant);
  if (it != tenant_pool_.end()) return it->second;
  auto by = by_name_.find(tenant);
  return by == by_name_.end() ? kNpos : by->second;
}

std::string PoolTree::pool_of(const std::string& tenant) const {
  const std::size_t index = find_tenant(tenant);
  return index == kNpos ? tenant : pools_[index].config.name;
}

void PoolTree::charge(const std::string& tenant,
                      const cluster::Resources& usage) {
  pools_[ensure_tenant(tenant)].usage += usage;
}

void PoolTree::release(const std::string& tenant,
                       const cluster::Resources& usage) {
  Pool& pool = pools_[ensure_tenant(tenant)];
  pool.usage = clamped_sub(pool.usage, usage);
}

void PoolTree::add_demand(const std::string& tenant,
                          const cluster::Resources& demand) {
  pools_[ensure_tenant(tenant)].demand += demand;
}

void PoolTree::remove_demand(const std::string& tenant,
                             const cluster::Resources& demand) {
  Pool& pool = pools_[ensure_tenant(tenant)];
  pool.demand = clamped_sub(pool.demand, demand);
}

double PoolTree::subtree_usage_fraction(std::size_t pool) const {
  double total = fraction_of(pools_[pool].usage);
  for (std::size_t child : pools_[pool].children) {
    total += subtree_usage_fraction(child);
  }
  return total;
}

double PoolTree::subtree_wanted_fraction(std::size_t pool) const {
  double total = fraction_of(pools_[pool].usage + pools_[pool].demand);
  for (std::size_t child : pools_[pool].children) {
    total += subtree_wanted_fraction(child);
  }
  return total;
}

void PoolTree::distribute(std::size_t node, double fraction) {
  Pool& pool = pools_[node];
  pool.fair = fraction;
  if (pool.leaf()) return;

  const std::size_t n = pool.children.size();
  std::vector<double> cap(n), floor(n), assigned(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Pool& child = pools_[pool.children[i]];
    double limit = std::numeric_limits<double>::infinity();
    if (!child.config.limit.is_zero()) {
      limit = fraction_of(child.config.limit);
    }
    cap[i] = std::min(subtree_wanted_fraction(pool.children[i]), limit);
    floor[i] = std::min(fraction_of(child.config.guarantee), cap[i]);
  }

  // Guarantees first. If floors overcommit the parent's fraction they
  // scale down proportionally (guarantee overcommit is a config smell,
  // but the split must stay feasible).
  double floor_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) floor_sum += floor[i];
  if (floor_sum > fraction + kEps && floor_sum > 0) {
    const double scale = fraction / floor_sum;
    for (std::size_t i = 0; i < n; ++i) assigned[i] = floor[i] * scale;
  } else {
    for (std::size_t i = 0; i < n; ++i) assigned[i] = floor[i];
    double remaining = fraction - floor_sum;
    // Weighted water-filling of the remainder: children cap out at their
    // (demand- or limit-bounded) cap; capped-out children's share flows
    // to the rest.
    std::vector<bool> frozen(n, false);
    while (remaining > kEps) {
      double weight_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i] && cap[i] - assigned[i] > kEps) {
          weight_sum += pools_[pool.children[i]].config.weight;
        } else {
          frozen[i] = true;
        }
      }
      if (weight_sum <= 0) break;  // everyone satisfied; share goes idle
      // Cap-out pass: children whose proportional slice exceeds their
      // headroom take exactly the headroom and freeze; the round then
      // repeats so their surplus flows to the survivors.
      bool capped = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        const double give =
            remaining * pools_[pool.children[i]].config.weight / weight_sum;
        if (give >= cap[i] - assigned[i] - kEps) {
          remaining -= cap[i] - assigned[i];
          assigned[i] = cap[i];
          frozen[i] = true;
          capped = true;
        }
      }
      if (capped) continue;
      // No child capped: the proportional split fits everyone; commit.
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        assigned[i] +=
            remaining * pools_[pool.children[i]].config.weight / weight_sum;
      }
      break;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    distribute(pool.children[i], assigned[i]);
  }
}

void PoolTree::recompute() {
  if (pools_.empty()) return;
  distribute(0, 1.0);
}

void PoolTree::advance_time(util::TimeNs now) {
  if (halflife_ <= 0) return;
  if (now <= hist_last_) return;
  // Usage is piecewise-constant between folds: decay the old average by
  // 2^(-dt/halflife) and blend in the fraction held over the interval.
  const double keep = std::exp2(-static_cast<double>(now - hist_last_) /
                                static_cast<double>(halflife_));
  hist_last_ = now;
  for (Pool& pool : pools_) {
    pool.hist = keep * pool.hist + (1.0 - keep) * fraction_of(pool.usage);
  }
}

double PoolTree::historical_fraction(const std::string& tenant) const {
  const std::size_t index = find_tenant(tenant);
  return index == kNpos ? 0.0 : pools_[index].hist;
}

double PoolTree::usage_fraction(const std::string& tenant) const {
  const std::size_t index = find_tenant(tenant);
  return index == kNpos ? 0.0 : fraction_of(pools_[index].usage);
}

double PoolTree::demand_fraction(const std::string& tenant) const {
  const std::size_t index = find_tenant(tenant);
  return index == kNpos ? 0.0 : fraction_of(pools_[index].demand);
}

double PoolTree::fair_fraction(const std::string& tenant) const {
  const std::size_t index = find_tenant(tenant);
  return index == kNpos ? 0.0 : pools_[index].fair;
}

double PoolTree::schedule_key(const std::string& tenant) const {
  const std::size_t index = find_tenant(tenant);
  if (index == kNpos) return kIdleKey;
  const Pool& pool = pools_[index];
  if (pool.fair <= kEps) return kIdleKey;
  double usage = fraction_of(pool.usage);
  // With historical tracking on, a pool is charged the worse of "what it
  // holds now" and "what it held recently": a finished burst keeps
  // counting against the tenant until the EWMA decays back.
  if (halflife_ > 0) usage = std::max(usage, pool.hist);
  return usage / pool.fair;
}

bool PoolTree::over_fair_share(const std::string& tenant,
                               const cluster::Resources& headroom) const {
  const std::size_t index = find_tenant(tenant);
  if (index == kNpos) return false;
  const Pool& pool = pools_[index];
  const double usage = fraction_of(clamped_sub(pool.usage, headroom));
  return usage > pool.fair + 1e-6;
}

bool PoolTree::within_limit(const std::string& tenant,
                            const cluster::Resources& request) const {
  std::size_t index = find_tenant(tenant);
  if (index == kNpos) return true;
  // Walk up the ancestry; every pool with a limit must absorb the
  // request on top of its subtree usage.
  std::vector<std::size_t> chain;
  for (std::size_t cur = index; cur != 0; cur = pools_[cur].parent) {
    chain.push_back(cur);
  }
  for (std::size_t pool : chain) {
    const Pool& p = pools_[pool];
    if (p.config.limit.is_zero()) continue;
    cluster::Resources used;
    // Subtree usage in resource space (limits are resource vectors).
    std::vector<std::size_t> stack{pool};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      used += pools_[cur].usage;
      for (std::size_t child : pools_[cur].children) stack.push_back(child);
    }
    if (!p.config.limit.fits(used + request)) return false;
  }
  return true;
}

std::vector<std::string> PoolTree::pools() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, index] : by_name_) names.push_back(name);
  return names;
}

cluster::Resources PoolTree::pool_usage(const std::string& pool) const {
  return pools_[index_of(pool)].usage;
}

}  // namespace evolve::orch
