// Background rebalancer (heavy-scheduler style).
//
// The scheduling pass is greedy and online; over time the cluster
// fragments — free capacity is spread thin across nodes while pending
// pods that need a contiguous chunk starve. The rebalancer runs a
// periodic background round that looks for starving pending pods
// (waiting longer than a threshold) and proposes swaps: evict one
// controller-managed pod from a node where that single eviction makes
// the starving pod fit, provided the victim verifiably fits on another
// node right now. The victim's controller recreates it there; the
// starving pod takes the freed slot on the next scheduling pass.
//
// Safety: only pods with a budget_group (i.e. owned by a controller that
// recreates them) are moved, every move is gated by the group's
// DisruptionBudget, and each round caps its total evictions so the
// rebalancer converges instead of thrashing.
#pragma once

#include <cstdint>

#include "orch/scheduler.hpp"

namespace evolve::orch {

struct RebalancerConfig {
  util::TimeNs interval = util::millis(500);
  /// A pending pod counts as starving once it has waited this long.
  util::TimeNs starvation_threshold = util::millis(200);
  /// Eviction cap per round (anti-thrash).
  int max_evictions_per_round = 2;
  /// Starving pods examined per round (oldest first).
  int max_starving_considered = 8;
};

class Rebalancer {
 public:
  Rebalancer(sim::Simulation& sim, Orchestrator& orch,
             RebalancerConfig config = {});

  /// Starts the periodic rounds (idempotent).
  void start();
  /// Stops after the current round; no further rounds are scheduled.
  void stop();

  /// Runs one round immediately (also used by the periodic loop).
  /// Returns the number of evictions performed.
  int round_now();

  std::int64_t rounds() const { return rounds_; }
  std::int64_t evictions() const { return evictions_; }
  std::int64_t moves_considered() const { return moves_considered_; }

 private:
  void schedule_next();

  sim::Simulation& sim_;
  Orchestrator& orch_;
  RebalancerConfig config_;
  bool running_ = false;
  bool tick_scheduled_ = false;
  std::int64_t rounds_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t moves_considered_ = 0;
};

}  // namespace evolve::orch
