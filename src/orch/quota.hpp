// Per-tenant resource quotas (admission control).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "cluster/resources.hpp"

namespace evolve::orch {

class QuotaManager {
 public:
  /// Sets (or replaces) a tenant's quota. Tenants without a quota are
  /// unlimited.
  void set_quota(const std::string& tenant, cluster::Resources limit);
  void clear_quota(const std::string& tenant);

  std::optional<cluster::Resources> quota(const std::string& tenant) const;
  cluster::Resources usage(const std::string& tenant) const;

  /// True if `request` fits in the tenant's remaining quota.
  bool allows(const std::string& tenant,
              const cluster::Resources& request) const;

  /// Charges/releases usage. Releasing for a tenant that was never
  /// charged (quota enabled on a cluster with pre-existing pods) is a
  /// counted no-op; over-releasing a known tenant still throws.
  void charge(const std::string& tenant, const cluster::Resources& request);
  void release(const std::string& tenant, const cluster::Resources& request);

  /// Number of release() calls that found no usage record.
  std::int64_t unmatched_releases() const { return unmatched_releases_; }

 private:
  std::map<std::string, cluster::Resources> limits_;
  std::map<std::string, cluster::Resources> usage_;
  std::int64_t unmatched_releases_ = 0;
};

}  // namespace evolve::orch
