// Lease-based liveness with fencing tokens.
//
// "Slow vs. dead is undecidable" over an asynchronous network: a
// partitioned node looks exactly like a crashed one from the control
// plane, yet it may still be running pods and issuing writes on the far
// side. The LeaseManager resolves the ambiguity the way production
// control planes do — with time, not certainty:
//
//  * Every managed node renews a lease by sending a heartbeat *through
//    the fabric* to the leader node. A partition parks the heartbeat,
//    so lease expiry emerges from the modeled network, not from an
//    oracle.
//  * A node whose lease expires becomes Unreachable in the orchestrator
//    (unschedulable, pods fenced in place) and its fencing epoch is
//    bumped: layers wired to on_expire (see fault/wiring.hpp) treat
//    writes stamped with an older epoch as zombie writes and reject
//    them — the node may be alive, but it can no longer mutate shared
//    state.
//  * Only after the lease *grace* elapses are the fenced pods evicted
//    and rescheduled. A partition shorter than the grace therefore heals
//    without a pod massacre: the first heartbeat that lands after the
//    heal reconnects the node.
//
// Crashes are not leases' business: wiring pauses a node's lease while
// the FaultInjector holds it down (fail_node already evicted its pods)
// and resumes it with a fresh lease on recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::orch {

struct LeaseManagerConfig {
  /// Node hosting the lease table (the control plane's vantage point).
  cluster::NodeId leader = 0;
  util::TimeNs renew_interval = util::millis(500);
  /// Lease length: expiry fires this long after the last heartbeat
  /// landed at the leader.
  util::TimeNs ttl = util::seconds(2);
  /// After expiry, how long fenced pods wait before being evicted.
  util::TimeNs grace = util::seconds(10);
  /// Heartbeat message size.
  util::Bytes renew_bytes = 256;
  /// Staggers each node's renewal phase so heartbeats don't arrive as a
  /// synchronized wave.
  std::uint64_t seed = 1;
};

class LeaseManager {
 public:
  /// Called with the node, its current fencing epoch, and the time.
  using LeaseFn =
      std::function<void(cluster::NodeId, std::int64_t, util::TimeNs)>;

  LeaseManager(sim::Simulation& sim, net::Fabric& fabric, Orchestrator& orch,
               LeaseManagerConfig config = {});
  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Lease expired: the node is now Unreachable and the epoch was bumped.
  void on_expire(LeaseFn fn) { expire_subs_.push_back(std::move(fn)); }
  /// A heartbeat landed from an Unreachable node: it reconnected.
  void on_reconnect(LeaseFn fn) { reconnect_subs_.push_back(std::move(fn)); }
  /// Grace elapsed: the node's fenced pods were evicted for reschedule.
  void on_evict(LeaseFn fn) { evict_subs_.push_back(std::move(fn)); }

  /// Grants initial leases and starts the renewal loops for every node
  /// the orchestrator manages.
  void start();
  /// Cancels all renewal/expiry events and in-flight heartbeats
  /// (end-of-experiment drain).
  void stop();

  /// Crash interplay (wired from FaultInjector): a downed node stops
  /// renewing without becoming Unreachable — the crash path already
  /// evicted its pods.
  void pause(cluster::NodeId node);
  /// Recovery: fresh lease, renewals restart.
  void resume(cluster::NodeId node);

  /// Current fencing epoch of a node (bumped on every expiry). Writes
  /// stamped with an older epoch are zombie writes.
  std::int64_t epoch(cluster::NodeId node) const;
  bool is_unreachable(cluster::NodeId node) const;
  int unreachable_count() const { return unreachable_count_; }
  std::int64_t expiries() const { return expiries_; }
  std::int64_t reconnects() const { return reconnects_; }
  std::int64_t evictions() const { return evictions_; }
  /// Accumulated node-seconds spent Unreachable (open intervals charged
  /// up to now).
  double unreachable_node_seconds() const;

 private:
  struct NodeLease {
    bool paused = false;       // FaultInjector holds the node down
    bool unreachable = false;  // lease expired, not yet reconnected
    std::int64_t epoch = 1;
    net::FlowId pending = 0;  // in-flight heartbeat (0 = none)
    sim::EventId renew_event = 0;
    sim::EventId expiry_event = 0;
    sim::EventId grace_event = 0;
    bool has_renew_event = false;
    bool has_expiry_event = false;
    bool has_grace_event = false;
    util::TimeNs unreachable_since = 0;
    util::Rng rng;  // per-node renewal phase jitter
  };

  void arm_renewal(cluster::NodeId node, util::TimeNs delay);
  void send_renewal(cluster::NodeId node);
  void handle_ack(cluster::NodeId node);
  void handle_expiry(cluster::NodeId node);
  void handle_grace(cluster::NodeId node);
  void arm_expiry(cluster::NodeId node);
  void cancel_events(NodeLease& lease);
  NodeLease& lease(cluster::NodeId node);

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  Orchestrator& orch_;
  LeaseManagerConfig config_;
  util::Rng rng_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<LeaseFn> expire_subs_;
  std::vector<LeaseFn> reconnect_subs_;
  std::vector<LeaseFn> evict_subs_;
  std::map<cluster::NodeId, NodeLease> leases_;
  int unreachable_count_ = 0;
  std::int64_t expiries_ = 0;
  std::int64_t reconnects_ = 0;
  std::int64_t evictions_ = 0;
  util::TimeNs unreachable_ns_ = 0;
};

}  // namespace evolve::orch
