// Scheduler framework: filter plugins (hard feasibility) and score
// plugins (soft preference), mirroring the Kubernetes scheduling
// framework that EVOLVE's unified scheduler builds on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "orch/node_status.hpp"
#include "orch/pod.hpp"

namespace evolve::orch {

class FilterPlugin {
 public:
  virtual ~FilterPlugin() = default;
  virtual std::string name() const = 0;
  /// True when `node` can run `pod` at all.
  virtual bool feasible(const PodSpec& pod, const cluster::NodeSpec& spec,
                        const NodeStatus& node) const = 0;
};

class ScorePlugin {
 public:
  virtual ~ScorePlugin() = default;
  virtual std::string name() const = 0;
  /// Score in [0, 1]; higher is better. Combined as a weighted sum.
  virtual double score(const PodSpec& pod, const cluster::NodeSpec& spec,
                       const NodeStatus& node) const = 0;
};

// ---- Filters ---------------------------------------------------------

/// Node must have enough free resources for the pod request.
class ResourceFitFilter : public FilterPlugin {
 public:
  std::string name() const override { return "ResourceFit"; }
  bool feasible(const PodSpec& pod, const cluster::NodeSpec& spec,
                const NodeStatus& node) const override;
};

/// Every label in the pod's node_selector must be present on the node.
class NodeSelectorFilter : public FilterPlugin {
 public:
  std::string name() const override { return "NodeSelector"; }
  bool feasible(const PodSpec& pod, const cluster::NodeSpec& spec,
                const NodeStatus& node) const override;
};

// ---- Scores ----------------------------------------------------------

/// Prefer nodes with the most free capacity (spreading).
class LeastAllocatedScore : public ScorePlugin {
 public:
  std::string name() const override { return "LeastAllocated"; }
  double score(const PodSpec& pod, const cluster::NodeSpec& spec,
               const NodeStatus& node) const override;
};

/// Prefer nodes with the least free capacity that still fit (bin-packing).
class MostAllocatedScore : public ScorePlugin {
 public:
  std::string name() const override { return "MostAllocated"; }
  double score(const PodSpec& pod, const cluster::NodeSpec& spec,
               const NodeStatus& node) const override;
};

/// Prefer nodes whose CPU and memory usage stay balanced after placement
/// (avoids stranding one dimension).
class BalancedAllocationScore : public ScorePlugin {
 public:
  std::string name() const override { return "BalancedAllocation"; }
  double score(const PodSpec& pod, const cluster::NodeSpec& spec,
               const NodeStatus& node) const override;
};

/// Prefer the pod's preferred_nodes (data locality), with a lower score
/// for same-rack nodes and zero elsewhere.
class LocalityScore : public ScorePlugin {
 public:
  explicit LocalityScore(const cluster::Cluster& cluster)
      : cluster_(cluster) {}
  std::string name() const override { return "Locality"; }
  double score(const PodSpec& pod, const cluster::NodeSpec& spec,
               const NodeStatus& node) const override;

 private:
  const cluster::Cluster& cluster_;
};

/// Prefer nodes running fewer pods (simple count-based spreading).
class PodSpreadScore : public ScorePlugin {
 public:
  std::string name() const override { return "PodSpread"; }
  double score(const PodSpec& pod, const cluster::NodeSpec& spec,
               const NodeStatus& node) const override;
};

/// Weighted plugin set used by the scheduler.
struct SchedulingPolicy {
  std::vector<std::shared_ptr<FilterPlugin>> filters;
  std::vector<std::pair<std::shared_ptr<ScorePlugin>, double>> scorers;

  /// Default cloud policy: resource fit + selector; spread-oriented.
  static SchedulingPolicy spreading(const cluster::Cluster& cluster);
  /// Bin-packing policy (consolidation; frees whole nodes for gangs).
  static SchedulingPolicy binpacking(const cluster::Cluster& cluster);
};

}  // namespace evolve::orch
