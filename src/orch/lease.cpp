#include "orch/lease.hpp"

#include <stdexcept>

namespace evolve::orch {

LeaseManager::LeaseManager(sim::Simulation& sim, net::Fabric& fabric,
                           Orchestrator& orch, LeaseManagerConfig config)
    : sim_(sim),
      fabric_(fabric),
      orch_(orch),
      config_(config),
      rng_(config.seed) {
  if (config_.renew_interval <= 0 || config_.ttl <= 0 || config_.grace < 0) {
    throw std::invalid_argument("lease intervals must be positive");
  }
  if (config_.ttl <= config_.renew_interval) {
    throw std::invalid_argument(
        "lease ttl must exceed the renew interval (every healthy renewal "
        "would otherwise race its own expiry)");
  }
}

LeaseManager::NodeLease& LeaseManager::lease(cluster::NodeId node) {
  const auto it = leases_.find(node);
  if (it == leases_.end()) {
    throw std::out_of_range("node has no lease (start() not called?)");
  }
  return it->second;
}

void LeaseManager::start() {
  if (started_) return;
  started_ = true;
  for (const cluster::NodeId node : orch_.managed_nodes()) {
    NodeLease& l = leases_[node];
    l.rng = rng_.fork();
    // Initial lease granted at t=start; the first renewal lands at a
    // per-node phase inside the first interval so heartbeats stay
    // desynchronized forever after.
    arm_expiry(node);
    arm_renewal(node, static_cast<util::TimeNs>(
                          l.rng.uniform(0.0, 1.0) *
                          static_cast<double>(config_.renew_interval)));
  }
}

void LeaseManager::stop() {
  stopped_ = true;
  for (auto& [node, l] : leases_) {
    cancel_events(l);
    if (l.pending != 0) {
      fabric_.cancel(l.pending);
      l.pending = 0;
    }
    if (l.unreachable) {
      unreachable_ns_ += sim_.now() - l.unreachable_since;
      l.unreachable = false;
      --unreachable_count_;
    }
  }
}

void LeaseManager::cancel_events(NodeLease& l) {
  if (l.has_renew_event) {
    sim_.cancel(l.renew_event);
    l.has_renew_event = false;
  }
  if (l.has_expiry_event) {
    sim_.cancel(l.expiry_event);
    l.has_expiry_event = false;
  }
  if (l.has_grace_event) {
    sim_.cancel(l.grace_event);
    l.has_grace_event = false;
  }
}

void LeaseManager::arm_renewal(cluster::NodeId node, util::TimeNs delay) {
  NodeLease& l = lease(node);
  l.renew_event = sim_.after(delay, [this, node] {
    lease(node).has_renew_event = false;
    send_renewal(node);
  });
  l.has_renew_event = true;
}

void LeaseManager::send_renewal(cluster::NodeId node) {
  NodeLease& l = lease(node);
  if (stopped_ || l.paused) return;
  // At most one heartbeat in flight per node: a parked (partitioned)
  // renewal is superseded, not stacked — the fabric would otherwise
  // accumulate one parked flow per interval for the partition's whole
  // lifetime.
  if (l.pending != 0) fabric_.cancel(l.pending);
  l.pending = fabric_.transfer(node, config_.leader, config_.renew_bytes,
                               [this, node] { handle_ack(node); });
  arm_renewal(node, config_.renew_interval);
}

void LeaseManager::handle_ack(cluster::NodeId node) {
  NodeLease& l = lease(node);
  l.pending = 0;
  if (stopped_ || l.paused) return;
  arm_expiry(node);
  if (!l.unreachable) return;
  // First heartbeat through the healed network: the node reconnects.
  l.unreachable = false;
  unreachable_ns_ += sim_.now() - l.unreachable_since;
  --unreachable_count_;
  ++reconnects_;
  if (l.has_grace_event) {
    sim_.cancel(l.grace_event);
    l.has_grace_event = false;
  }
  orch_.clear_unreachable(node);
  for (const LeaseFn& fn : reconnect_subs_) fn(node, l.epoch, sim_.now());
}

void LeaseManager::arm_expiry(cluster::NodeId node) {
  NodeLease& l = lease(node);
  if (l.has_expiry_event) sim_.cancel(l.expiry_event);
  l.expiry_event =
      sim_.after(config_.ttl, [this, node] { handle_expiry(node); });
  l.has_expiry_event = true;
}

void LeaseManager::handle_expiry(cluster::NodeId node) {
  NodeLease& l = lease(node);
  l.has_expiry_event = false;
  if (stopped_ || l.paused || l.unreachable) return;
  l.unreachable = true;
  l.unreachable_since = sim_.now();
  ++unreachable_count_;
  ++expiries_;
  // Bump the fencing epoch *before* notifying: everything the node wrote
  // under the old epoch is now rejectable, even though the node itself
  // may still be alive behind the partition.
  ++l.epoch;
  orch_.mark_unreachable(node);
  for (const LeaseFn& fn : expire_subs_) fn(node, l.epoch, sim_.now());
  l.grace_event =
      sim_.after(config_.grace, [this, node] { handle_grace(node); });
  l.has_grace_event = true;
}

void LeaseManager::handle_grace(cluster::NodeId node) {
  NodeLease& l = lease(node);
  l.has_grace_event = false;
  if (stopped_ || !l.unreachable) return;
  ++evictions_;
  orch_.expire_unreachable(node);
  for (const LeaseFn& fn : evict_subs_) fn(node, l.epoch, sim_.now());
}

void LeaseManager::pause(cluster::NodeId node) {
  const auto it = leases_.find(node);
  if (it == leases_.end()) return;  // crash before start(): nothing to do
  NodeLease& l = it->second;
  if (l.paused) return;
  l.paused = true;
  cancel_events(l);
  if (l.pending != 0) {
    fabric_.cancel(l.pending);
    l.pending = 0;
  }
  if (l.unreachable) {
    // The crash path owns the node now (fail_node evicts its pods);
    // close out the Unreachable state without a reconnect.
    l.unreachable = false;
    unreachable_ns_ += sim_.now() - l.unreachable_since;
    --unreachable_count_;
    orch_.clear_unreachable(node);
  }
}

void LeaseManager::resume(cluster::NodeId node) {
  const auto it = leases_.find(node);
  if (it == leases_.end()) return;
  NodeLease& l = it->second;
  if (!l.paused || stopped_) return;
  l.paused = false;
  // Fresh lease: the recovered node gets a full ttl and rejoins the
  // renewal cadence at its own phase.
  arm_expiry(node);
  arm_renewal(node, static_cast<util::TimeNs>(
                        l.rng.uniform(0.0, 1.0) *
                        static_cast<double>(config_.renew_interval)));
}

std::int64_t LeaseManager::epoch(cluster::NodeId node) const {
  const auto it = leases_.find(node);
  return it == leases_.end() ? 1 : it->second.epoch;
}

bool LeaseManager::is_unreachable(cluster::NodeId node) const {
  const auto it = leases_.find(node);
  return it != leases_.end() && it->second.unreachable;
}

double LeaseManager::unreachable_node_seconds() const {
  util::TimeNs open = 0;
  for (const auto& [node, l] : leases_) {
    if (l.unreachable) open += sim_.now() - l.unreachable_since;
  }
  return util::to_seconds(unreachable_ns_ + open);
}

}  // namespace evolve::orch
