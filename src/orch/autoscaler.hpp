// Horizontal pod autoscaler: periodically resizes a deployment to track
// an external load signal (Kubernetes HPA semantics: immediate scale-up,
// stabilization-window scale-down).
#pragma once

#include <deque>
#include <functional>

#include "orch/controllers.hpp"
#include "sim/simulation.hpp"

namespace evolve::orch {

struct AutoscalerConfig {
  /// Each replica is sized for this much load (e.g. requests/s).
  double capacity_per_replica = 100.0;
  /// Target fraction of replica capacity to run at (headroom below 1).
  double target_utilization = 0.7;
  int min_replicas = 1;
  int max_replicas = 64;
  util::TimeNs interval = util::seconds(15);
  /// Scale down only to the max recommendation seen in this window.
  util::TimeNs scale_down_window = util::seconds(60);
};

class HorizontalAutoscaler {
 public:
  /// `load` is sampled every interval (aggregate demand on the service).
  HorizontalAutoscaler(sim::Simulation& sim, DeploymentController& deployment,
                       std::function<double()> load,
                       AutoscalerConfig config = {});

  /// Arms the periodic reconcile loop.
  void start();
  /// Stops the loop (required for the simulation to drain).
  void stop();

  /// Replica count the last sample asked for (before stabilization).
  int last_recommendation() const { return last_recommendation_; }
  std::int64_t scale_ups() const { return scale_ups_; }
  std::int64_t scale_downs() const { return scale_downs_; }

  /// One reconcile step (also called by the periodic loop).
  void reconcile();

 private:
  int recommend(double load) const;

  sim::Simulation& sim_;
  DeploymentController& deployment_;
  std::function<double()> load_;
  AutoscalerConfig config_;
  bool running_ = false;
  int last_recommendation_ = 0;
  std::int64_t scale_ups_ = 0;
  std::int64_t scale_downs_ = 0;
  /// (time, recommendation) samples inside the stabilization window.
  std::deque<std::pair<util::TimeNs, int>> history_;
};

}  // namespace evolve::orch
