#include "orch/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/log.hpp"

namespace evolve::orch {

cluster::NodeId select_node(const PodSpec& pod,
                            const cluster::Cluster& cluster,
                            const std::vector<NodeStatus>& nodes,
                            const SchedulingPolicy& policy) {
  cluster::NodeId best = cluster::kInvalidNode;
  double best_score = -1.0;
  for (const NodeStatus& node : nodes) {
    const auto& spec = cluster.node(node.id());
    bool ok = true;
    for (const auto& filter : policy.filters) {
      if (!filter->feasible(pod, spec, node)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double score = 0.0;
    for (const auto& [scorer, weight] : policy.scorers) {
      score += weight * scorer->score(pod, spec, node);
    }
    if (score > best_score) {
      best_score = score;
      best = node.id();
    }
  }
  return best;
}

namespace {

/// Excludes cordoned, NotReady (crashed), quarantined, and Unreachable
/// (lease-expired) nodes; appended to every orchestrator's policy.
class CordonFilter : public FilterPlugin {
 public:
  CordonFilter(const std::set<cluster::NodeId>* cordoned,
               const std::set<cluster::NodeId>* not_ready,
               const std::set<cluster::NodeId>* quarantined,
               const std::set<cluster::NodeId>* unreachable)
      : cordoned_(cordoned),
        not_ready_(not_ready),
        quarantined_(quarantined),
        unreachable_(unreachable) {}
  std::string name() const override { return "Cordon"; }
  bool feasible(const PodSpec&, const cluster::NodeSpec&,
                const NodeStatus& node) const override {
    return cordoned_->count(node.id()) == 0 &&
           not_ready_->count(node.id()) == 0 &&
           quarantined_->count(node.id()) == 0 &&
           unreachable_->count(node.id()) == 0;
  }

 private:
  const std::set<cluster::NodeId>* cordoned_;
  const std::set<cluster::NodeId>* not_ready_;
  const std::set<cluster::NodeId>* quarantined_;
  const std::set<cluster::NodeId>* unreachable_;
};

/// Hard anti-affinity: a node may host at most one pod per group.
class AntiAffinityFilter : public FilterPlugin {
 public:
  explicit AntiAffinityFilter(
      const std::map<std::pair<cluster::NodeId, std::string>, int>* counts)
      : counts_(counts) {}
  std::string name() const override { return "AntiAffinity"; }
  bool feasible(const PodSpec& pod, const cluster::NodeSpec&,
                const NodeStatus& node) const override {
    if (pod.anti_affinity_group.empty()) return true;
    auto it = counts_->find({node.id(), pod.anti_affinity_group});
    return it == counts_->end() || it->second == 0;
  }

 private:
  const std::map<std::pair<cluster::NodeId, std::string>, int>* counts_;
};

}  // namespace

Orchestrator::Orchestrator(sim::Simulation& sim,
                           const cluster::Cluster& cluster,
                           SchedulingPolicy policy, OrchestratorConfig config)
    : sim_(sim),
      cluster_(cluster),
      policy_(std::move(policy)),
      config_(config) {
  policy_.filters.push_back(std::make_shared<CordonFilter>(
      &cordoned_, &not_ready_, &quarantined_, &unreachable_));
  policy_.filters.push_back(
      std::make_shared<AntiAffinityFilter>(&affinity_counts_));
  std::vector<cluster::NodeId> managed = config_.nodes;
  if (managed.empty()) {
    for (cluster::NodeId n = 0; n < cluster_.size(); ++n) managed.push_back(n);
  }
  double total_cpu = 0, total_mem = 0;
  for (cluster::NodeId n : managed) {
    const auto allocatable =
        cluster_.node(n).allocatable(config_.accel_slots_per_device);
    node_index_[n] = nodes_.size();
    nodes_.emplace_back(n, allocatable);
    total_cpu += static_cast<double>(allocatable.cpu_millicores);
    total_mem += static_cast<double>(allocatable.memory_bytes);
  }
  cpu_usage_.set_capacity(total_cpu);
  mem_usage_.set_capacity(total_mem);
}

NodeStatus& Orchestrator::status_for(cluster::NodeId node) {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw std::out_of_range("node not managed by this orchestrator");
  }
  return nodes_[it->second];
}

Orchestrator::PodRecord& Orchestrator::record(PodId id) {
  auto it = pods_.find(id);
  if (it == pods_.end()) throw std::out_of_range("unknown pod id");
  return it->second;
}

const PodStatus& Orchestrator::pod(PodId id) const {
  auto it = pods_.find(id);
  if (it == pods_.end()) throw std::out_of_range("unknown pod id");
  return it->second.status;
}

const NodeStatus& Orchestrator::node_status(cluster::NodeId node) const {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw std::out_of_range("node not managed by this orchestrator");
  }
  return nodes_[it->second];
}

void Orchestrator::enqueue(PodId id) {
  queue_.push_back(id);
  kick_pump();
}

void Orchestrator::kick_pump() {
  if (!queue_.empty() && !pump_scheduled_ && !shutdown_) {
    pump_scheduled_ = true;
    sim_.after(config_.scheduling_interval, [this] { pump(); });
  }
}

void Orchestrator::pump() {
  pump_scheduled_ = false;
  if (shutdown_) return;
  schedule_now();
}

PodId Orchestrator::submit(PodSpec spec, util::TimeNs duration,
                           StartFn on_start, FinishFn on_finish) {
  if (!quotas_.allows(spec.tenant, spec.request)) {
    metrics_.count("admission_rejected");
    return kInvalidPod;
  }
  quotas_.charge(spec.tenant, spec.request);
  if (pool_tree_) pool_tree_->add_demand(spec.tenant, spec.request);
  const PodId id = next_pod_++;
  PodRecord rec;
  rec.status.id = id;
  rec.status.spec = std::move(spec);
  rec.status.submit_time = sim_.now();
  rec.duration = duration;
  rec.on_start = std::move(on_start);
  rec.on_finish = std::move(on_finish);
  auto [it, inserted] = pods_.emplace(id, std::move(rec));
  trace_submit(it->second);
  metrics_.count("pods_submitted");
  enqueue(id);
  return id;
}

std::vector<PodId> Orchestrator::submit_gang(std::vector<PodSpec> specs,
                                             util::TimeNs duration,
                                             StartFn on_start,
                                             FinishFn on_finish) {
  if (specs.empty()) return {};
  // Admission is all-or-nothing against the (shared) tenant quota.
  cluster::Resources total;
  for (const auto& spec : specs) total += spec.request;
  const std::string tenant = specs.front().tenant;
  if (!quotas_.allows(tenant, total)) {
    metrics_.count("admission_rejected");
    return {};
  }
  const GangId gang = next_gang_++;
  std::vector<PodId> ids;
  ids.reserve(specs.size());
  for (auto& spec : specs) {
    spec.gang = gang;
    spec.tenant = tenant;
    quotas_.charge(tenant, spec.request);
    if (pool_tree_) pool_tree_->add_demand(tenant, spec.request);
    const PodId id = next_pod_++;
    PodRecord rec;
    rec.status.id = id;
    rec.status.spec = std::move(spec);
    rec.status.submit_time = sim_.now();
    rec.duration = duration;
    rec.on_start = on_start;
    rec.on_finish = on_finish;
    auto [it, inserted] = pods_.emplace(id, std::move(rec));
    trace_submit(it->second);
    metrics_.count("pods_submitted");
    enqueue(id);
    ids.push_back(id);
  }
  return ids;
}

void Orchestrator::trace_submit(PodRecord& rec) {
  if (!tracer_) return;
  rec.wait_span =
      tracer_->begin(trace::Layer::kScheduler, "pod.wait");
  tracer_->annotate(rec.wait_span, "pod", rec.status.spec.name.empty()
                                              ? std::to_string(rec.status.id)
                                              : rec.status.spec.name);
}

void Orchestrator::place(PodRecord& rec, cluster::NodeId node) {
  status_for(node).bind(rec.status.id, rec.status.spec.request);
  if (!rec.status.spec.anti_affinity_group.empty()) {
    ++affinity_counts_[{node, rec.status.spec.anti_affinity_group}];
  }
  if (!rec.status.spec.budget_group.empty()) {
    ++group_running_[rec.status.spec.budget_group];
  }
  if (pool_tree_) {
    pool_tree_->remove_demand(rec.status.spec.tenant, rec.status.spec.request);
    pool_tree_->charge(rec.status.spec.tenant, rec.status.spec.request);
  }
  rec.status.phase = PodPhase::kRunning;
  rec.status.node = node;
  rec.status.start_time = sim_.now() + config_.bind_latency;
  ++running_count_;
  cpu_usage_.add(sim_.now(),
                 static_cast<double>(rec.status.spec.request.cpu_millicores));
  mem_usage_.add(sim_.now(),
                 static_cast<double>(rec.status.spec.request.memory_bytes));
  metrics_.count("pods_started");
  metrics_.observe("pod_wait_ms",
                   (sim_.now() - rec.status.submit_time) / util::kMillisecond);
  if (tracer_) {
    tracer_->end(rec.wait_span);
    // Service pods (negative duration: executors, rank holders) get no
    // run span — they would shadow the work the run actually does.
    if (rec.duration >= 0) {
      const trace::SpanId parent =
          rec.wait_span != trace::kNoSpan
              ? tracer_->span(rec.wait_span).parent
              : trace::kNoSpan;
      rec.run_span =
          tracer_->begin(trace::Layer::kCloud, "pod.run", parent);
      tracer_->annotate(rec.run_span, "node", std::to_string(node));
    }
  }

  const PodId id = rec.status.id;
  const util::TimeNs duration = rec.duration;
  sim_.after(config_.bind_latency, [this, id, node] {
    auto it = pods_.find(id);
    if (it == pods_.end() || it->second.status.is_terminal()) return;
    if (it->second.on_start) it->second.on_start(id, node);
  });
  if (duration >= 0) {
    sim_.after(config_.bind_latency + duration,
               [this, id] { complete(id, PodPhase::kSucceeded); });
  }
}

void Orchestrator::complete(PodId id, PodPhase phase) {
  auto it = pods_.find(id);
  if (it == pods_.end()) return;
  PodRecord& rec = it->second;
  if (rec.status.is_terminal()) return;

  if (rec.status.phase == PodPhase::kRunning) {
    status_for(rec.status.node).unbind(id, rec.status.spec.request);
    if (!rec.status.spec.anti_affinity_group.empty()) {
      --affinity_counts_[{rec.status.node,
                          rec.status.spec.anti_affinity_group}];
    }
    if (!rec.status.spec.budget_group.empty()) {
      --group_running_[rec.status.spec.budget_group];
    }
    if (pool_tree_) {
      pool_tree_->release(rec.status.spec.tenant, rec.status.spec.request);
    }
    cpu_usage_.add(sim_.now(),
                   -static_cast<double>(rec.status.spec.request.cpu_millicores));
    mem_usage_.add(sim_.now(),
                   -static_cast<double>(rec.status.spec.request.memory_bytes));
    --running_count_;
  } else {
    // Still pending: drop it from the queue.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    if (pool_tree_) {
      pool_tree_->remove_demand(rec.status.spec.tenant,
                                rec.status.spec.request);
    }
  }
  quotas_.release(rec.status.spec.tenant, rec.status.spec.request);
  rec.status.phase = phase;
  rec.status.finish_time = sim_.now();
  if (tracer_) {
    if (phase == PodPhase::kFailed && rec.run_span != trace::kNoSpan) {
      tracer_->annotate(rec.run_span, "outcome", "failed");
    }
    tracer_->end(rec.wait_span);  // no-op unless cancelled while pending
    tracer_->end(rec.run_span);
  }
  metrics_.count(phase == PodPhase::kSucceeded ? "pods_succeeded"
                                               : "pods_failed");
  if (rec.on_finish) rec.on_finish(id, phase);
  if (phase == PodPhase::kFailed) fail_gang_of(rec);
  kick_pump();
}

void Orchestrator::fail_gang_of(const PodRecord& rec) {
  const GangId gang = rec.status.spec.gang;
  if (gang == 0) return;
  if (!gangs_failing_.insert(gang).second) return;  // cascade in progress
  std::vector<PodId> members;
  for (const auto& [pid, other] : pods_) {
    if (other.status.spec.gang == gang && !other.status.is_terminal()) {
      members.push_back(pid);
    }
  }
  for (PodId pid : members) {
    metrics_.count("gang_kills");
    complete(pid, PodPhase::kFailed);
  }
  gangs_failing_.erase(gang);
}

void Orchestrator::finish(PodId id) { complete(id, PodPhase::kSucceeded); }

bool Orchestrator::cancel(PodId id) {
  auto it = pods_.find(id);
  if (it == pods_.end() || it->second.status.is_terminal()) return false;
  complete(id, PodPhase::kFailed);
  return true;
}

bool Orchestrator::try_schedule_gang(GangId gang,
                                     std::vector<PodId>& gang_pods) {
  // Trial binds maintain the anti-affinity counts too, so same-group
  // gang members cannot co-locate during the trial.
  auto trial_bind = [this](PodId id, cluster::NodeId node) {
    const PodSpec& spec = record(id).status.spec;
    status_for(node).bind(id, spec.request);
    if (!spec.anti_affinity_group.empty()) {
      ++affinity_counts_[{node, spec.anti_affinity_group}];
    }
  };
  auto trial_unbind = [this](PodId id, cluster::NodeId node) {
    const PodSpec& spec = record(id).status.spec;
    status_for(node).unbind(id, spec.request);
    if (!spec.anti_affinity_group.empty()) {
      --affinity_counts_[{node, spec.anti_affinity_group}];
    }
  };

  std::vector<std::pair<PodId, cluster::NodeId>> bound;
  for (PodId id : gang_pods) {
    PodRecord& rec = record(id);
    const cluster::NodeId node =
        select_node(rec.status.spec, cluster_, nodes_, policy_);
    if (node == cluster::kInvalidNode) {
      // Roll back tentative binds; the gang waits as a unit.
      for (auto& [bid, bnode] : bound) trial_unbind(bid, bnode);
      metrics_.count("gang_placement_failures");
      return false;
    }
    trial_bind(id, node);
    bound.emplace_back(id, node);
  }
  // All fit: undo the trial binds and run the real placement lifecycle.
  for (auto& [id, node] : bound) trial_unbind(id, node);
  for (auto& [id, node] : bound) place(record(id), node);
  (void)gang;
  return true;
}

bool Orchestrator::try_preempt_for(const PodRecord& rec) {
  const PodSpec& spec = rec.status.spec;
  // Priority preemption needs a positive priority; fair preemption needs
  // the pod's pool to sit below its fair share.
  const bool fair_mode = pool_tree_ != nullptr &&
                         config_.enable_fair_preemption &&
                         pool_tree_->schedule_key(spec.tenant) < 1.0;
  if (spec.priority <= 0 && !fair_mode) return false;
  // With fair preemption on, preemption only serves pools below their
  // fair share — a high-priority pod of an over-share pool evicting an
  // under-share pool's pods would just feed an eviction/re-eviction loop.
  if (pool_tree_ != nullptr && config_.enable_fair_preemption && !fair_mode) {
    return false;
  }

  // Find the node where evicting the cheapest eligible set of pods makes
  // room; evict exactly that set.
  NodeSelectorFilter selector;
  for (NodeStatus& node : nodes_) {
    const auto& node_spec = cluster_.node(node.id());
    if (!selector.feasible(spec, node_spec, node)) continue;
    if (!node.allocatable().fits(spec.request)) continue;

    struct Candidate {
      int priority;
      double size;  // dominant share of the node (bigger evicts first)
      PodId id;
      bool lower_priority;
    };
    std::vector<Candidate> candidates;
    for (PodId pid : node.pods()) {
      const PodStatus& victim = pods_.at(pid).status;
      const bool lower = victim.spec.priority < spec.priority;
      // Fair mode additionally allows equal-or-lower-priority victims
      // from pools running over their fair share.
      const bool over_share = fair_mode &&
                              victim.spec.tenant != spec.tenant &&
                              victim.spec.priority <= spec.priority &&
                              pool_tree_->over_fair_share(victim.spec.tenant);
      if (!lower && !over_share) continue;
      candidates.push_back(
          {victim.spec.priority,
           victim.spec.request.dominant_share(node.allocatable()), pid,
           lower});
    }
    // Cheapest set: lowest priority first, then the biggest request
    // (fewest victims), then the newest pod (highest id) so long-running
    // work survives ties.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.priority != b.priority) return a.priority < b.priority;
                if (a.size != b.size) return a.size > b.size;
                return a.id > b.id;
              });

    cluster::Resources free = node.free();
    std::vector<const Candidate*> chosen;
    std::map<std::string, int> group_evictions;
    std::map<std::string, cluster::Resources> tenant_released;
    for (const Candidate& cand : candidates) {
      if (free.fits(spec.request)) break;  // stop exactly when it fits
      const PodStatus& victim = pods_.at(cand.id).status;
      const std::string& group = victim.spec.budget_group;
      if (!disruption_allowed(group, group_evictions[group])) continue;
      if (!cand.lower_priority &&
          !pool_tree_->over_fair_share(victim.spec.tenant,
                                       tenant_released[victim.spec.tenant])) {
        continue;  // earlier picks already brought the pool to its share
      }
      free += victim.spec.request;
      if (!group.empty()) ++group_evictions[group];
      tenant_released[victim.spec.tenant] += victim.spec.request;
      chosen.push_back(&cand);
    }
    if (!free.fits(spec.request)) continue;
    if (chosen.empty()) continue;  // blocked by a filter, not by capacity

    // Drop victims that turned out to be unnecessary: smallest first,
    // keep every drop that still leaves room.
    std::sort(chosen.begin(), chosen.end(),
              [](const Candidate* a, const Candidate* b) {
                if (a->size != b->size) return a->size < b->size;
                return a->id < b->id;
              });
    std::vector<PodId> final_victims;
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const cluster::Resources request = pods_.at(chosen[i]->id).status.spec.request;
      cluster::Resources without = free - request;
      if (without.fits(spec.request)) {
        free = without;  // unnecessary: keep it running
      } else {
        final_victims.push_back(chosen[i]->id);
      }
    }

    if (tracer_) {
      const trace::SpanId span =
          tracer_->begin(trace::Layer::kScheduler, "orch.preempt");
      tracer_->annotate(span, "pod",
                        spec.name.empty() ? std::to_string(rec.status.id)
                                          : spec.name);
      tracer_->annotate(span, "node", std::to_string(node.id()));
      tracer_->annotate(span, "victims",
                        std::to_string(final_victims.size()));
      tracer_->end(span);
    }
    for (PodId pid : final_victims) {
      note_eviction(pods_.at(pid).status.spec.budget_group);
      metrics_.count("preemptions");
      complete(pid, PodPhase::kFailed);
    }
    return true;
  }
  return false;
}

void Orchestrator::compact_queue() {
  // One O(n) rebuild per scheduling pass (placements used to erase the
  // queue per pod — O(n^2) under a large backlog). Relative order of the
  // still-pending pods is untouched.
  std::deque<PodId> pending;
  for (PodId id : queue_) {
    auto it = pods_.find(id);
    if (it != pods_.end() && it->second.status.phase == PodPhase::kPending) {
      pending.push_back(id);
    }
  }
  queue_.swap(pending);
}

void Orchestrator::schedule_now() {
  metrics_.count("scheduling_passes");
  // Snapshot and order the queue. Default: priority desc, then submit
  // order. With a pool tree: most-starved pool first (lowest usage/fair
  // ratio, snapshotted per pass), then priority, then submit order.
  std::vector<PodId> order(queue_.begin(), queue_.end());
  std::map<std::string, double> pool_key;
  if (pool_tree_) {
    pool_tree_->advance_time(sim_.now());
    pool_tree_->recompute();
    for (PodId id : order) {
      const std::string& tenant = record(id).status.spec.tenant;
      pool_key.emplace(tenant, pool_tree_->schedule_key(tenant));
    }
    std::stable_sort(order.begin(), order.end(), [&](PodId a, PodId b) {
      const PodSpec& sa = record(a).status.spec;
      const PodSpec& sb = record(b).status.spec;
      const double ka = pool_key.at(sa.tenant);
      const double kb = pool_key.at(sb.tenant);
      if (ka != kb) return ka < kb;
      return sa.priority > sb.priority;
    });
  } else {
    std::stable_sort(order.begin(), order.end(), [this](PodId a, PodId b) {
      return record(a).status.spec.priority > record(b).status.spec.priority;
    });
  }

  std::set<GangId> gangs_tried;
  // Fair-share reservation: once a pod (or gang) of some pool fails to
  // place, pools that are better served must not leapfrog it and eat the
  // capacity it is waiting for — capacity freed by churn then drains
  // toward the starved pool across passes. Pools at the same or a more
  // starved key keep placing (work conservation within the share order).
  constexpr double kNoReservation = std::numeric_limits<double>::infinity();
  double blocked_key = kNoReservation;
  const auto key_of = [&](const PodSpec& spec) {
    if (!pool_tree_) return 0.0;
    auto it = pool_key.find(spec.tenant);
    return it == pool_key.end() ? 0.0 : it->second;
  };
  for (PodId id : order) {
    auto it = pods_.find(id);
    if (it == pods_.end()) continue;
    PodRecord& rec = it->second;
    if (rec.status.phase != PodPhase::kPending) continue;
    const double key = key_of(rec.status.spec);
    if (pool_tree_ && key > blocked_key) continue;  // reserved for a
                                                    // more starved pool

    if (rec.status.spec.gang != 0) {
      const GangId gang = rec.status.spec.gang;
      if (!gangs_tried.insert(gang).second) continue;
      std::vector<PodId> members;
      for (PodId other : order) {
        auto oit = pods_.find(other);
        if (oit != pods_.end() &&
            oit->second.status.phase == PodPhase::kPending &&
            oit->second.status.spec.gang == gang) {
          members.push_back(other);
        }
      }
      if (!try_schedule_gang(gang, members)) {  // placed members leave
        blocked_key = std::min(blocked_key, key);  // the queue in
      }                                            // compact_queue()
      continue;
    }

    cluster::NodeId node = select_node(rec.status.spec, cluster_, nodes_,
                                       policy_);
    if (node == cluster::kInvalidNode && config_.enable_preemption &&
        try_preempt_for(rec)) {
      node = select_node(rec.status.spec, cluster_, nodes_, policy_);
    }
    if (node == cluster::kInvalidNode) {
      blocked_key = std::min(blocked_key, key);
      continue;
    }
    place(rec, node);
  }
  compact_queue();
  metrics_.set_gauge("pending_pods", static_cast<double>(queue_.size()));
}

void Orchestrator::cordon(cluster::NodeId node) {
  (void)status_for(node);  // validate it is managed here
  cordoned_.insert(node);
  metrics_.count("cordons");
}

void Orchestrator::uncordon(cluster::NodeId node) {
  if (cordoned_.erase(node) > 0) kick_pump();
}

bool Orchestrator::is_cordoned(cluster::NodeId node) const {
  return cordoned_.count(node) != 0;
}

void Orchestrator::evict_pods(cluster::NodeId node) {
  const std::set<PodId> victims = status_for(node).pods();
  for (PodId pod : victims) {
    metrics_.count("evictions");
    complete(pod, PodPhase::kFailed);
  }
}

void Orchestrator::drain(cluster::NodeId node) {
  cordon(node);
  evict_pods(node);
}

bool Orchestrator::manages(cluster::NodeId node) const {
  return node_index_.count(node) != 0;
}

void Orchestrator::fail_node(cluster::NodeId node) {
  (void)status_for(node);  // validate it is managed here
  if (!not_ready_.insert(node).second) return;
  not_ready_since_[node] = sim_.now();
  metrics_.count("node_failures");
  evict_pods(node);
}

void Orchestrator::recover_node(cluster::NodeId node) {
  if (not_ready_.erase(node) == 0) return;
  metrics_.count("node_recoveries");
  metrics_.observe("node_downtime_ms", (sim_.now() - not_ready_since_[node]) /
                                           util::kMillisecond);
  not_ready_since_.erase(node);
  kick_pump();
}

bool Orchestrator::is_ready(cluster::NodeId node) const {
  return not_ready_.count(node) == 0;
}

void Orchestrator::quarantine(cluster::NodeId node) {
  (void)status_for(node);  // validate it is managed here
  if (!quarantined_.insert(node).second) return;
  metrics_.count("quarantines");
}

void Orchestrator::unquarantine(cluster::NodeId node) {
  if (quarantined_.erase(node) > 0) kick_pump();
}

bool Orchestrator::is_quarantined(cluster::NodeId node) const {
  return quarantined_.count(node) != 0;
}

void Orchestrator::mark_unreachable(cluster::NodeId node) {
  (void)status_for(node);  // validate it is managed here
  if (!unreachable_.insert(node).second) return;
  metrics_.count("node_unreachable");
}

void Orchestrator::clear_unreachable(cluster::NodeId node) {
  if (unreachable_.erase(node) == 0) return;
  metrics_.count("node_reconnects");
  kick_pump();
}

bool Orchestrator::is_unreachable(cluster::NodeId node) const {
  return unreachable_.count(node) != 0;
}

void Orchestrator::expire_unreachable(cluster::NodeId node) {
  if (unreachable_.count(node) == 0) return;
  metrics_.count("unreachable_evictions");
  evict_pods(node);
}

void Orchestrator::attach_pool_tree(PoolTree* tree) {
  pool_tree_ = tree;
  if (pool_tree_ && pool_tree_->capacity().is_zero()) {
    cluster::Resources capacity;
    for (const NodeStatus& node : nodes_) capacity += node.allocatable();
    pool_tree_->set_capacity(capacity);
  }
}

void Orchestrator::set_disruption_budget(const std::string& group,
                                         DisruptionBudget budget) {
  if (group.empty()) {
    throw std::invalid_argument("disruption budget needs a group name");
  }
  budgets_[group].budget = budget;
}

bool Orchestrator::disruption_allowed(const std::string& group,
                                      int tentative) const {
  if (group.empty()) return true;
  auto it = budgets_.find(group);
  if (it == budgets_.end()) return true;
  const BudgetState& state = it->second;
  const util::TimeNs cutoff = sim_.now() - state.budget.window;
  int recent = tentative;
  for (util::TimeNs t : state.recent) {
    if (t > cutoff) ++recent;
  }
  if (recent >= state.budget.max_evictions_per_window) return false;
  auto run = group_running_.find(group);
  const int running = run == group_running_.end() ? 0 : run->second;
  return running - tentative > state.budget.min_available;
}

bool Orchestrator::disruption_allowed(const std::string& group) const {
  return disruption_allowed(group, 0);
}

void Orchestrator::note_eviction(const std::string& group) {
  if (group.empty()) return;
  auto it = budgets_.find(group);
  if (it == budgets_.end()) return;
  BudgetState& state = it->second;
  state.recent.push_back(sim_.now());
  const util::TimeNs cutoff = sim_.now() - state.budget.window;
  while (!state.recent.empty() && state.recent.front() <= cutoff) {
    state.recent.pop_front();
  }
}

bool Orchestrator::evict_for_rebalance(PodId victim) {
  auto it = pods_.find(victim);
  if (it == pods_.end() || it->second.status.phase != PodPhase::kRunning) {
    return false;
  }
  const std::string& group = it->second.status.spec.budget_group;
  if (!disruption_allowed(group, 0)) return false;
  note_eviction(group);
  metrics_.count("rebalance_evictions");
  complete(victim, PodPhase::kFailed);
  return true;
}

std::vector<PodId> Orchestrator::pending_snapshot() const {
  return std::vector<PodId>(queue_.begin(), queue_.end());
}

std::vector<cluster::NodeId> Orchestrator::managed_nodes() const {
  std::vector<cluster::NodeId> nodes;
  nodes.reserve(node_index_.size());
  for (const auto& [id, index] : node_index_) nodes.push_back(id);
  return nodes;
}

cluster::NodeId Orchestrator::feasible_node_for(const PodSpec& spec,
                                                cluster::NodeId exclude) const {
  std::vector<NodeStatus> eligible;
  eligible.reserve(nodes_.size());
  for (const NodeStatus& node : nodes_) {
    if (node.id() != exclude) eligible.push_back(node);
  }
  return select_node(spec, cluster_, eligible, policy_);
}

double Orchestrator::cpu_utilization() const {
  return cpu_usage_.utilization(sim_.now());
}

double Orchestrator::mean_cpu_millicores() const {
  return cpu_usage_.mean_usage(sim_.now());
}

double Orchestrator::memory_utilization() const {
  return mem_usage_.utilization(sim_.now());
}

void Orchestrator::shutdown() { shutdown_ = true; }

}  // namespace evolve::orch
