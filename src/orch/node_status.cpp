#include "orch/node_status.hpp"

#include <stdexcept>

namespace evolve::orch {

void NodeStatus::bind(PodId pod, const cluster::Resources& request) {
  if (!fits(request)) {
    throw std::logic_error("bind would overcommit node " +
                           std::to_string(id_));
  }
  if (!pods_.insert(pod).second) {
    throw std::logic_error("pod already bound to node");
  }
  allocated_ += request;
}

void NodeStatus::unbind(PodId pod, const cluster::Resources& request) {
  if (pods_.erase(pod) == 0) {
    throw std::logic_error("pod not bound to node " + std::to_string(id_));
  }
  allocated_ -= request;
  if (allocated_.any_negative()) {
    throw std::logic_error("unbind drove allocation negative");
  }
}

}  // namespace evolve::orch
