// Elastic service: the full request-serving path under a bursty day —
// open-loop Poisson arrivals -> CoDel admission -> p2c router -> fabric
// -> bounded replica queues -> dynamic batches -> responses, with the
// latency-aware ScalingSignal driving the horizontal autoscaler (no
// oracle load curve: the autoscaler sees only what the serving path
// observed). A node drain mid-spike shows replicas closing, queued
// requests re-routing, and the deployment self-healing.
//
// Build & run:  ./build/examples/elastic_service
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "metrics/histogram.hpp"
#include "net/fabric.hpp"
#include "orch/autoscaler.hpp"
#include "orch/controllers.hpp"
#include "orch/scheduler.hpp"
#include "serve/generator.hpp"
#include "serve/service.hpp"
#include "serve/signal.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

int main() {
  using namespace evolve;

  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 2, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));

  // The service: anti-affine replicas so a node drain cannot take out
  // more than one at a time.
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";
  orch::DeploymentController deploy(orch, "api", pod, 2);

  // One setup-heavy class: 4 ms per batch + 6 ms per request, so a
  // fully-batched replica sustains ~150 req/s and the spikes below
  // genuinely need more replicas.
  std::vector<serve::RequestClass> classes(1);
  classes[0].name = "api";
  classes[0].compute_cost = util::millis(6);
  classes[0].batch_setup = util::millis(4);
  classes[0].slo = util::millis(150);

  serve::ServiceConfig config;
  config.policy = serve::BalancePolicy::kPowerOfTwo;
  config.replica.queue_limit = 64;
  config.replica.batch.max_batch = 8;
  config.replica.batch.max_linger = util::millis(1);
  config.admission.enabled = true;  // brownout while scaling catches up
  config.admission.target = util::millis(25);
  config.admission.interval = util::millis(25);
  serve::Service service(sim, fabric, deploy, classes, config);

  // Latency-aware autoscaling: the signal is fed by the serving path.
  serve::ScalingSignalConfig sconfig;
  sconfig.window = util::seconds(10);
  sconfig.delay_target = util::millis(25);
  sconfig.capacity_per_replica = 120.0;
  sconfig.target_inflight_per_replica = 8.0;
  serve::ScalingSignal signal(sim, sconfig);
  service.attach_signal(&signal);

  orch::AutoscalerConfig aconfig;
  aconfig.capacity_per_replica = 120.0;
  aconfig.target_utilization = 0.8;
  aconfig.min_replicas = 2;
  aconfig.max_replicas = 8;
  aconfig.interval = util::seconds(5);
  aconfig.scale_down_window = util::seconds(60);
  orch::HorizontalAutoscaler hpa(
      sim, deploy, [&signal] { return signal.load(); }, aconfig);
  hpa.start();

  // Bursty day: a baseline with two spikes.
  struct Phase {
    const char* name;
    util::TimeNs end;
    double rate;
  };
  const std::vector<Phase> phases = {{"cruise", util::seconds(120), 150.0},
                                     {"spike 1", util::seconds(240), 550.0},
                                     {"recovery", util::seconds(420), 150.0},
                                     {"spike 2", util::seconds(480), 750.0},
                                     {"cool-down", util::seconds(600), 150.0}};
  auto phase_of = [&phases](util::TimeNs t) {
    std::size_t i = 0;
    while (i + 1 < phases.size() && t >= phases[i].end) ++i;
    return i;
  };

  // Per-phase accounting keyed by *arrival* time: every arrival either
  // completes (observer below) or was shed, so shed = arrived - done.
  std::vector<std::int64_t> arrived(phases.size(), 0);
  std::vector<std::int64_t> done(phases.size(), 0);
  std::vector<std::int64_t> violations(phases.size(), 0);
  std::vector<metrics::Histogram> latency(phases.size());
  std::vector<int> peak_replicas(phases.size(), 0);
  service.set_completion_observer([&](const serve::Request& req,
                                      const serve::RequestClass&,
                                      util::TimeNs lat, bool slo_ok) {
    const std::size_t i = phase_of(req.arrival);
    ++done[i];
    if (!slo_ok) ++violations[i];
    latency[i].record(lat / util::kMicrosecond);
  });

  serve::GeneratorConfig gen;
  for (const auto& phase : phases) gen.phases.push_back({phase.end, phase.rate});
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = phases.back().end;
  gen.seed = 0xe1a5;
  serve::RequestGenerator generator(sim, gen, [&](serve::Request req) {
    ++arrived[phase_of(req.arrival)];
    service.submit(std::move(req));
  });
  generator.start();

  for (util::TimeNs t = 0; t < phases.back().end; t += util::seconds(1)) {
    sim.at(t, [&, t] {
      auto& peak = peak_replicas[phase_of(t)];
      peak = std::max(peak, service.replica_count());
    });
  }

  // A node drain mid-spike: one replica closes, its queued requests
  // re-route, the deployment restarts the pod elsewhere.
  const auto compute = cluster.nodes_with_label("role=compute");
  sim.at(util::seconds(180), [&] {
    std::cout << "t=180s: draining node " << compute[0] << " (maintenance)\n";
    orch.drain(compute[0]);
  });

  sim.run_until(phases.back().end + util::seconds(1));
  hpa.stop();
  sim.run();

  core::Table table("Elastic service over 10 simulated minutes",
                    {"phase", "offered", "arrived", "shed", "peak repl",
                     "p50", "p99", "slo viol"});
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const std::int64_t shed = arrived[i] - done[i];
    const double shed_pct =
        arrived[i] == 0 ? 0.0
                        : 100.0 * static_cast<double>(shed) /
                              static_cast<double>(arrived[i]);
    table.add_row({phases[i].name, util::fixed(phases[i].rate, 0) + "/s",
                   std::to_string(arrived[i]),
                   util::fixed(shed_pct, 1) + "%",
                   std::to_string(peak_replicas[i]),
                   util::fixed(latency[i].p50() / 1e3, 1) + " ms",
                   util::fixed(latency[i].p99() / 1e3, 1) + " ms",
                   std::to_string(violations[i])});
  }
  table.print();

  std::cout << "\nScale events: " << hpa.scale_ups() << " up, "
            << hpa.scale_downs() << " down; rerouted on replica close: "
            << service.rerouted()
            << "; replica restarts after drain: " << deploy.restarts()
            << "\nCompleted "
            << service.metrics().counter("serve.completed") << "/"
            << service.metrics().counter("serve.requests")
            << " requests (goodput "
            << service.tenant("default").goodput()
            << "); a peak-provisioned service would pin 8 replicas all day.\n";
  return 0;
}
