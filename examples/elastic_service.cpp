// Elastic service: a deployment tracked by the horizontal autoscaler
// under a bursty load curve, observed by the cluster monitor — the
// "cloud" third of the converged platform on its own.
//
// Build & run:  ./build/examples/elastic_service
#include <cmath>
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/monitor.hpp"
#include "core/report.hpp"
#include "orch/autoscaler.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

int main() {
  using namespace evolve;

  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));

  // The service: anti-affine replicas so node drains cannot take out
  // more than one at a time.
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";
  orch::DeploymentController deploy(orch, "api", pod, 1);

  // Bursty load: a baseline with two spikes.
  auto load_at = [](util::TimeNs t) {
    const double s = util::to_seconds(t);
    double load = 150.0;
    if (s >= 120 && s < 240) load = 550.0;   // spike 1
    if (s >= 420 && s < 480) load = 750.0;   // spike 2
    return load;
  };

  orch::AutoscalerConfig config;
  config.capacity_per_replica = 100.0;
  config.target_utilization = 0.9;
  config.min_replicas = 1;
  config.max_replicas = 8;
  config.interval = util::seconds(15);
  config.scale_down_window = util::seconds(60);
  orch::HorizontalAutoscaler hpa(sim, deploy,
                                 [&] { return load_at(sim.now()); }, config);
  hpa.start();

  core::ClusterMonitor monitor(sim, util::seconds(15));
  monitor.add_probe("load", [&] { return load_at(sim.now()); });
  monitor.add_probe("replicas", [&] {
    return static_cast<double>(deploy.desired());
  });
  monitor.start();

  // A node failure mid-spike: the deployment self-heals.
  sim.at(util::seconds(180), [&] {
    std::cout << "t=180s: draining node 0 (maintenance)\n";
    orch.drain(0);
  });

  const util::TimeNs horizon = util::seconds(600);
  sim.run_until(horizon);
  hpa.stop();
  monitor.stop();
  sim.run();

  core::Table table("Elastic service over 10 simulated minutes",
                    {"t", "load (req/s)", "replicas"});
  const auto& load = monitor.registry().series("load");
  const auto& replicas = monitor.registry().series("replicas");
  for (std::size_t i = 0; i < load.size(); i += 4) {  // every minute
    table.add_row({util::human_time(load.samples()[i].time),
                   util::fixed(load.samples()[i].value, 0),
                   util::fixed(replicas.samples()[i].value, 0)});
  }
  table.print();
  std::cout << "\nScale events: " << hpa.scale_ups() << " up, "
            << hpa.scale_downs() << " down; evictions: "
            << orch.metrics().counter("evictions")
            << "; replica restarts after drain: " << deploy.restarts()
            << "\nMean replicas: "
            << util::fixed(replicas.time_weighted_mean(horizon), 2)
            << " (peak-provisioned baseline would pin 8)\n";
  return 0;
}
