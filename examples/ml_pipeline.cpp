// ML pipeline: featurize a raw dataset with the dataflow engine, train
// a model with distributed SGD (MPI-style all-reduce), optionally
// FPGA-accelerated, then publish the model to the shared object store.
//
// Build & run:  ./build/examples/ml_pipeline
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "util/strings.hpp"
#include "workloads/ml.hpp"
#include "workloads/tabular.hpp"

int main() {
  using namespace evolve;

  sim::Simulation sim;
  core::Platform platform(sim);
  core::Session session(platform);

  session.create_dataset("raw-samples", 32, 2 * util::kGiB);

  // Stage 1: feature engineering (compute-heavy dataflow).
  std::cout << "Featurizing 2 GiB of raw samples...\n";
  const auto features = session.run_dataflow(
      workloads::featurize("raw-samples", "features"), /*executors=*/8,
      /*slots=*/4);
  std::cout << "  " << util::human_bytes(features.bytes_read) << " read, "
            << util::human_bytes(features.bytes_written) << " written in "
            << util::human_time(features.duration) << "\n\n";

  // Stage 2: distributed SGD, CPU vs FPGA-assisted.
  workloads::SgdModel model;
  model.parameters_bytes = 128 * util::kMiB;
  model.epochs = 12;
  model.epoch_compute = util::seconds(8);

  core::Table table("SGD training (12 epochs, ring all-reduce)",
                    {"workers", "accel", "epoch time", "total"});
  for (int workers : {2, 4, 8}) {
    for (double speedup : {1.0, 8.0}) {
      const auto program = workloads::sgd_program(
          model, workers, hpc::CollectiveAlgo::kRing, speedup);
      const auto stats = session.run_hpc(program, workers);
      table.add_row(
          {std::to_string(workers), speedup > 1 ? "fpga" : "cpu",
           util::human_time(stats.total_time / model.epochs),
           util::human_time(stats.total_time)});
    }
  }
  table.print();

  // Stage 3: publish the model.
  bool published = false;
  platform.store().create_bucket("models");
  platform.store().put(0, {"models", "mobility-v1"}, model.parameters_bytes,
                       [&] { published = true; });
  sim.run();
  std::cout << "\nModel published to models/mobility-v1: "
            << (published ? "yes" : "no") << " ("
            << util::human_bytes(model.parameters_bytes) << ")\n";
  return published ? 0 : 1;
}
