// Urban-mobility use case (EVOLVE's fleet-analytics pilot shape):
// GPS traces -> validate -> join/aggregate per route -> HPC clustering
// -> serving container. Runs the same pipeline on the converged platform
// and on a siloed baseline and reports the end-to-end difference.
//
// Build & run:  ./build/examples/urban_mobility
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/siloed.hpp"
#include "util/strings.hpp"
#include "workloads/mobility.hpp"

int main() {
  using namespace evolve;

  workloads::MobilityScenario scenario;
  scenario.trace_bytes = 4 * util::kGiB;
  scenario.trace_partitions = 64;
  scenario.analytics_executors = 6;
  scenario.clustering_ranks = 8;

  std::cout << "Urban mobility pipeline over "
            << util::human_bytes(scenario.trace_bytes) << " of GPS traces\n\n";

  // --- Converged run -------------------------------------------------
  util::TimeNs converged = 0;
  {
    sim::Simulation sim;
    core::Platform platform(sim);
    workloads::stage_mobility_inputs(platform.catalog(), scenario);
    bool ok = false;
    platform.run_workflow(workloads::mobility_pipeline(scenario),
                          [&](const workflow::WorkflowResult& r) {
                            ok = r.success;
                            converged = r.duration;
                          });
    sim.run();
    if (!ok) {
      std::cerr << "converged pipeline failed\n";
      return 1;
    }
  }

  // --- Siloed baseline -----------------------------------------------
  util::TimeNs siloed = 0;
  util::Bytes staged = 0;
  {
    sim::Simulation sim;
    core::SiloedPlatform silos(sim);
    workloads::stage_mobility_inputs(silos.bigdata_catalog(), scenario);
    bool ok = false;
    silos.run_workflow(workloads::mobility_pipeline(scenario),
                       [&](const workflow::WorkflowResult& r) {
                         ok = r.success;
                         siloed = r.duration;
                       });
    sim.run();
    if (!ok) {
      std::cerr << "siloed pipeline failed\n";
      return 1;
    }
    staged = silos.staged_bytes();
  }

  core::Table table("End-to-end pipeline time",
                    {"deployment", "time", "staged data"});
  table.add_row({"converged (EVOLVE)", util::human_time(converged), "0 B"});
  table.add_row({"siloed baseline", util::human_time(siloed),
                 util::human_bytes(staged)});
  table.print();
  std::cout << "\nConvergence speedup: "
            << util::fixed(static_cast<double>(siloed) /
                               static_cast<double>(converged),
                           2)
            << "x (staging copies eliminated)\n";
  return 0;
}
