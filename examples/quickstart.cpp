// Quickstart: bring up a converged EVOLVE platform, stage a dataset,
// and run a three-step mixed workflow (container -> analytics -> HPC).
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "util/strings.hpp"
#include "workloads/ml.hpp"
#include "workloads/tabular.hpp"

int main() {
  using namespace evolve;

  // 1. A converged testbed: 8 compute + 4 storage + 2 FPGA nodes.
  sim::Simulation sim;
  core::Platform platform(sim);
  core::Session session(platform);

  std::cout << "Cluster: " << platform.cluster().size() << " nodes, "
            << platform.store().servers().size() << " storage servers, "
            << platform.accel().device_count() << " FPGA devices\n\n";

  // 2. Stage an input dataset in the shared object store.
  session.create_dataset("clickstream", /*partitions=*/32,
                         /*total_bytes=*/util::kGiB);

  // 3. A mixed workflow: prep container -> Spark-style aggregation ->
  //    MPI-style training -> FPGA-accelerated scoring.
  workflow::Workflow wf("quickstart");

  orch::PodSpec prep;
  prep.name = "prep";
  prep.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  wf.add(workflow::container_step("prep", prep, util::seconds(2)));

  auto analytics = workflow::dataflow_step(
      "aggregate",
      workloads::scan_filter_aggregate("clickstream", "features", 16),
      /*executors=*/4, /*slots=*/4);
  analytics.depends_on = {"prep"};
  wf.add(analytics);

  auto train = workflow::hpc_step(
      "train", workloads::sgd_program(workloads::SgdModel{.epochs = 5}, 8),
      /*ranks=*/8);
  train.depends_on = {"aggregate"};
  wf.add(train);

  auto score = workflow::accel_step("score", "dnn-infer", util::seconds(20));
  score.depends_on = {"train"};
  wf.add(score);

  const auto result = session.run_workflow(wf);

  // 4. Report.
  core::Table table("Workflow '" + wf.name() + "' (" +
                        std::string(result.success ? "succeeded" : "FAILED") +
                        ")",
                    {"step", "duration", "attempts"});
  for (const auto& step : wf.steps()) {
    const auto& r = result.steps.at(step.name);
    table.add_row({step.name, util::human_time(r.duration()),
                   std::to_string(r.attempts)});
  }
  table.print();
  std::cout << "\nTotal simulated time: " << util::human_time(result.duration)
            << "\nOutput dataset 'features' materialized: "
            << (platform.catalog().materialized("features") ? "yes" : "no")
            << "\n";
  return result.success ? 0 : 1;
}
