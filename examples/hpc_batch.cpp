// HPC batch queue: a Slurm-style queue with FCFS vs EASY backfill on a
// synthetic job stream, showing how backfill recovers stranded nodes.
//
// Build & run:  ./build/examples/hpc_batch
#include <iostream>

#include "core/report.hpp"
#include "hpc/batch_queue.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

struct QueueRun {
  double utilization;
  double mean_wait_s;
  std::int64_t backfilled;
  evolve::util::TimeNs makespan;
};

QueueRun run_policy(evolve::hpc::QueuePolicy policy, std::uint64_t seed) {
  using namespace evolve;
  sim::Simulation sim;
  hpc::BatchQueue queue(sim, /*total_nodes=*/32, policy);
  util::Rng rng(seed);

  // 60 jobs: a mix of wide/short and narrow/long, bursty arrivals.
  double clock = 0;
  for (int i = 0; i < 60; ++i) {
    clock += rng.exponential(0.08);  // ~12.5s between arrivals
    hpc::HpcJobSpec spec;
    spec.name = "job-" + std::to_string(i);
    if (rng.chance(0.25)) {
      spec.nodes = static_cast<int>(rng.uniform_int(16, 32));  // wide
      spec.runtime = util::seconds(rng.uniform(30, 120));
    } else {
      spec.nodes = static_cast<int>(rng.uniform_int(1, 6));  // narrow
      spec.runtime = util::seconds(rng.uniform(60, 600));
    }
    // Users overestimate walltime by 1.2-2x.
    spec.walltime = static_cast<util::TimeNs>(
        static_cast<double>(spec.runtime) * rng.uniform(1.2, 2.0));
    sim.at(util::seconds(clock),
           [&queue, spec] { queue.submit(spec); });
  }
  sim.run();
  return QueueRun{
      queue.utilization(),
      queue.metrics().histogram("job_wait_s").mean(),
      queue.metrics().counter("backfilled_jobs"),
      sim.now(),
  };
}

}  // namespace

int main() {
  using namespace evolve;
  core::Table table("Batch queue: FCFS vs EASY backfill (32 nodes, 60 jobs)",
                    {"policy", "node util", "mean wait", "backfills",
                     "makespan"});
  const auto fcfs = run_policy(hpc::QueuePolicy::kFcfs, 42);
  const auto easy = run_policy(hpc::QueuePolicy::kEasyBackfill, 42);
  table.add_row({"FCFS", util::fixed(fcfs.utilization * 100, 1) + "%",
                 util::fixed(fcfs.mean_wait_s, 1) + " s",
                 std::to_string(fcfs.backfilled),
                 util::human_time(fcfs.makespan)});
  table.add_row({"EASY backfill", util::fixed(easy.utilization * 100, 1) + "%",
                 util::fixed(easy.mean_wait_s, 1) + " s",
                 std::to_string(easy.backfilled),
                 util::human_time(easy.makespan)});
  table.print();
  std::cout << "\nBackfill recovers nodes stranded behind wide jobs: higher "
               "utilization,\nshorter queue waits, same FCFS start guarantee "
               "for the head job.\n";
  return 0;
}
