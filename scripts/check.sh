#!/usr/bin/env bash
# CI-style check: configure, build, run the full test suite, then run the
# simulation-kernel churn and fault-recovery benches in --json mode, and
# finally rebuild + retest under ASan/UBSan. Run from the repo root:
#
#   scripts/check.sh [build-dir]
#
# The benches write BENCH_f9_churn.json and BENCH_f10_faults.json into the
# build directory; compare them against the tracked baselines at the repo
# root to spot regressions. Set EVOLVE_SKIP_SANITIZERS=1 to skip the
# (slower) sanitizer pass; the sanitizer build lives in <build-dir>-asan.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

(cd "$BUILD_DIR" && ./bench/bench_f9_churn --json)
(cd "$BUILD_DIR" && ./bench/bench_f10_faults --json)

if [[ "${EVOLVE_SKIP_SANITIZERS:-0}" != "1" ]]; then
  SAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$SAN_DIR" -S . -DEVOLVE_SANITIZE=address,undefined
  cmake --build "$SAN_DIR" -j "$(nproc)"
  (cd "$SAN_DIR" && ctest --output-on-failure -j "$(nproc)")
  echo
  echo "check.sh: sanitizer (ASan/UBSan) test pass clean in $SAN_DIR"
fi

echo
echo "check.sh: all tests passed; bench metrics in $BUILD_DIR/BENCH_f9_churn.json and $BUILD_DIR/BENCH_f10_faults.json"
