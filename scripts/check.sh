#!/usr/bin/env bash
# CI-style check: configure, build, run the full test suite, run the
# simulation-kernel churn and fault-recovery benches in --json mode and
# diff their deterministic metrics against the tracked repo-root
# baselines, run the traced benches and strictly validate every emitted
# BENCH_*.json / TRACE_*.json, then rebuild + retest under ASan/UBSan.
# Run from the repo root:
#
#   scripts/check.sh [build-dir]
#
# Set EVOLVE_SKIP_SANITIZERS=1 to skip the (slower) sanitizer pass; the
# sanitizer build lives in <build-dir>-asan.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

(cd "$BUILD_DIR" && ./bench/bench_f9_churn --json)
(cd "$BUILD_DIR" && ./bench/bench_f10_faults --json)
(cd "$BUILD_DIR" && ./bench/bench_f11_gray --json)
(cd "$BUILD_DIR" && ./bench/bench_a4_speculation --json)
(cd "$BUILD_DIR" && ./bench/bench_a5_redundancy --json)
(cd "$BUILD_DIR" && ./bench/bench_f7_autoscale --json)
(cd "$BUILD_DIR" && ./bench/bench_f12_serving --json)
(cd "$BUILD_DIR" && ./bench/bench_f13_scale --json)
(cd "$BUILD_DIR" && ./bench/bench_f5_storage --json)
(cd "$BUILD_DIR" && ./bench/bench_f14_durability --json)
(cd "$BUILD_DIR" && ./bench/bench_f15_fairness --json)
(cd "$BUILD_DIR" && ./bench/bench_f16_partitions --json)
(cd "$BUILD_DIR" && ./bench/bench_f17_tablets --json)

# -- Baseline diffs (before any --trace run touches the reports) -------
# F9 mixes simulated metrics with host wall-clock timings; only the
# simulated lines are expected to be bit-identical. F10 is fully
# simulation-deterministic, so it must match exactly.
filter_host_timing() {
  grep -vE '"(incremental|reference)_(wall_s|us_per_flow|us_per_event)"|"speedup_per_flow"' "$1"
}
diff <(filter_host_timing "$BUILD_DIR/BENCH_f9_churn.json") \
     <(filter_host_timing BENCH_f9_churn.json) \
  || { echo "check.sh: BENCH_f9_churn.json deviates from baseline"; exit 1; }
diff "$BUILD_DIR/BENCH_f10_faults.json" BENCH_f10_faults.json \
  || { echo "check.sh: BENCH_f10_faults.json deviates from baseline"; exit 1; }
diff "$BUILD_DIR/BENCH_f11_gray.json" BENCH_f11_gray.json \
  || { echo "check.sh: BENCH_f11_gray.json deviates from baseline"; exit 1; }
diff "$BUILD_DIR/BENCH_f12_serving.json" BENCH_f12_serving.json \
  || { echo "check.sh: BENCH_f12_serving.json deviates from baseline"; exit 1; }
# F14 (durability under correlated failure) is fully simulation-
# deterministic: every column must match the baseline bit for bit.
diff "$BUILD_DIR/BENCH_f14_durability.json" BENCH_f14_durability.json \
  || { echo "check.sh: BENCH_f14_durability.json deviates from baseline"; exit 1; }
# F15 (fair share under contention) is fully simulation-deterministic.
diff "$BUILD_DIR/BENCH_f15_fairness.json" BENCH_f15_fairness.json \
  || { echo "check.sh: BENCH_f15_fairness.json deviates from baseline"; exit 1; }
# F16 (partitions + metastability defenses) is fully simulation-
# deterministic.
diff "$BUILD_DIR/BENCH_f16_partitions.json" BENCH_f16_partitions.json \
  || { echo "check.sh: BENCH_f16_partitions.json deviates from baseline"; exit 1; }
# F17 (tablet serving under Zipf skew) is fully simulation-deterministic.
diff "$BUILD_DIR/BENCH_f17_tablets.json" BENCH_f17_tablets.json \
  || { echo "check.sh: BENCH_f17_tablets.json deviates from baseline"; exit 1; }
echo "check.sh: bench metrics match the tracked baselines"

# -- F15 fairness gate --------------------------------------------------
# The fair-share scheduler must actually deliver fairness: Jain index
# >= 0.9 with the pool tree on, and a real gap over the priority-only
# baseline. Both values are simulation-deterministic.
f15_metric() {
  awk -v key="\"$2\":" '$1 == key { gsub(/,/, "", $2); print $2 }' "$1"
}
jain_fair=$(f15_metric "$BUILD_DIR/BENCH_f15_fairness.json" jain_fair)
jain_priority=$(f15_metric "$BUILD_DIR/BENCH_f15_fairness.json" jain_priority)
awk -v fair="$jain_fair" -v prio="$jain_priority" 'BEGIN {
  if (fair < 0.9) {
    printf "check.sh: F15 Jain index with fair share on is %.3f (< 0.9 floor)\n", fair
    exit 1
  }
  if (fair <= prio) {
    printf "check.sh: F15 fair share (%.3f) does not beat priority-only (%.3f)\n", fair, prio
    exit 1
  }
  printf "check.sh: F15 fairness gate ok: Jain %.3f fair vs %.3f priority-only\n", fair, prio
}'

# -- F16 partition-recovery gate ----------------------------------------
# Defenses on must recover goodput to >= 90% of the pre-partition rate in
# the 10 s window after the heal, beat defenses-off, and spend at most a
# lease TTL's worth of seconds degraded; defenses-off must exhibit the
# measurably degraded (retry-storm) recovery the defenses exist to
# prevent. All four values are simulation-deterministic.
f16_metric() {
  awk -v key="\"$2\":" '$1 == key { gsub(/,/, "", $2); print $2 }' "$1"
}
on_recovery=$(f16_metric "$BUILD_DIR/BENCH_f16_partitions.json" on_recovery_ratio)
off_recovery=$(f16_metric "$BUILD_DIR/BENCH_f16_partitions.json" off_recovery_ratio)
on_degraded=$(f16_metric "$BUILD_DIR/BENCH_f16_partitions.json" on_degraded_seconds)
off_degraded=$(f16_metric "$BUILD_DIR/BENCH_f16_partitions.json" off_degraded_seconds)
awk -v on="$on_recovery" -v off="$off_recovery" \
    -v ond="$on_degraded" -v offd="$off_degraded" 'BEGIN {
  if (on < 0.9) {
    printf "check.sh: F16 defenses-on recovery ratio %.3f (< 0.9 floor)\n", on
    exit 1
  }
  if (on <= off) {
    printf "check.sh: F16 defenses-on recovery (%.3f) does not beat defenses-off (%.3f)\n", on, off
    exit 1
  }
  if (ond > 5) {
    printf "check.sh: F16 defenses-on degraded for %d s (> 5 s ceiling)\n", ond
    exit 1
  }
  if (offd < 10) {
    printf "check.sh: F16 defenses-off degraded for only %d s — no retry-storm regime to defend against\n", offd
    exit 1
  }
  printf "check.sh: F16 partition gate ok: recovery %.3f on vs %.3f off, degraded %d s on vs %d s off\n", on, off, ond, offd
}'

# -- F17 tablet-balancing gate ------------------------------------------
# Splitting the hot shard and moving load off the busy node must actually
# pay: balancing-on p99 strictly below balancing-off p99 and balancing-on
# goodput strictly above — despite the accounted move-unavailability
# windows and stale-route retries the balancer causes. The balancer must
# also have done real work (splits and moves both nonzero). All values
# are simulation-deterministic.
f17_metric() {
  awk -v key="\"$2\":" '$1 == key { gsub(/,/, "", $2); print $2 }' "$1"
}
f17_on_p99=$(f17_metric "$BUILD_DIR/BENCH_f17_tablets.json" on_p99_ms)
f17_off_p99=$(f17_metric "$BUILD_DIR/BENCH_f17_tablets.json" off_p99_ms)
f17_on_goodput=$(f17_metric "$BUILD_DIR/BENCH_f17_tablets.json" on_goodput)
f17_off_goodput=$(f17_metric "$BUILD_DIR/BENCH_f17_tablets.json" off_goodput)
f17_splits=$(f17_metric "$BUILD_DIR/BENCH_f17_tablets.json" on_splits)
f17_moves=$(f17_metric "$BUILD_DIR/BENCH_f17_tablets.json" on_moves)
awk -v onp="$f17_on_p99" -v offp="$f17_off_p99" \
    -v ong="$f17_on_goodput" -v offg="$f17_off_goodput" \
    -v splits="$f17_splits" -v moves="$f17_moves" 'BEGIN {
  if (onp >= offp) {
    printf "check.sh: F17 balancing-on p99 %.2f ms does not beat balancing-off %.2f ms\n", onp, offp
    exit 1
  }
  if (ong <= offg) {
    printf "check.sh: F17 balancing-on goodput %d does not beat balancing-off %d\n", ong, offg
    exit 1
  }
  if (splits < 1 || moves < 1) {
    printf "check.sh: F17 balancer idle: %d splits, %d moves — nothing was balanced\n", splits, moves
    exit 1
  }
  printf "check.sh: F17 tablet gate ok: p99 %.2f ms on vs %.2f ms off, goodput %d vs %d (%d splits, %d moves)\n", onp, offp, ong, offg, splits, moves
}'

# -- F13 kernel-at-scale gate ------------------------------------------
# Event counts, checksums, and end times are simulation-deterministic and
# must match the baseline bit for bit. events/sec and speedup columns are
# host timing: those get a tolerance band, not a diff.
filter_f13_host_timing() {
  grep -vE '"(cal|ref)_[0-9]+k_(wall_s|events_per_sec|wall_per_sim_hour_s)"|"speedup_' "$1"
}
diff <(filter_f13_host_timing "$BUILD_DIR/BENCH_f13_scale.json") \
     <(filter_f13_host_timing BENCH_f13_scale.json) \
  || { echo "check.sh: BENCH_f13_scale.json deviates from baseline"; exit 1; }

f13_metric() {
  awk -v key="\"$2\":" '$1 == key { gsub(/,/, "", $2); print $2 }' "$1"
}
base_eps=$(f13_metric BENCH_f13_scale.json cal_10k_events_per_sec)
base_speedup=$(f13_metric BENCH_f13_scale.json speedup_10k)
fresh_eps=$(f13_metric "$BUILD_DIR/BENCH_f13_scale.json" cal_10k_events_per_sec)
fresh_speedup=$(f13_metric "$BUILD_DIR/BENCH_f13_scale.json" speedup_10k)
# The tracked baseline must keep claiming >= 3x; the fresh run only has to
# clear a noise-tolerant floor (slower CI hosts, no pinned cores).
awk -v fresh="$fresh_eps" -v base="$base_eps" -v speedup="$fresh_speedup" \
    -v base_speedup="$base_speedup" 'BEGIN {
  if (base_speedup < 3.0) {
    printf "check.sh: tracked F13 baseline speedup_10k %.2fx is below the 3x claim\n", base_speedup
    exit 1
  }
  if (fresh < 0.4 * base) {
    printf "check.sh: F13 kernel regressed: %.0f events/sec at 10k vs %.0f baseline (>60%% drop)\n", fresh, base
    exit 1
  }
  if (speedup < 2.0) {
    printf "check.sh: F13 calendar-vs-heap speedup at 10k fell to %.2fx (< 2.0x floor)\n", speedup
    exit 1
  }
  printf "check.sh: F13 perf gate ok: %.2fM events/sec at 10k (baseline %.2fM), speedup %.2fx\n", fresh / 1e6, base / 1e6, speedup
}'

# -- Traced runs + strict JSON validation ------------------------------
(cd "$BUILD_DIR" && ./bench/bench_t1_endtoend --trace --json)
(cd "$BUILD_DIR" && ./bench/bench_f10_faults --trace --json)
# Tracing must not perturb the simulation: the traced F11 rerun has to
# reproduce the tracked baseline bit for bit.
(cd "$BUILD_DIR" && ./bench/bench_f11_gray --trace --json)
diff "$BUILD_DIR/BENCH_f11_gray.json" BENCH_f11_gray.json \
  || { echo "check.sh: BENCH_f11_gray.json changed under --trace"; exit 1; }
# Same observational-tracing guarantee for the serving bench.
(cd "$BUILD_DIR" && ./bench/bench_f12_serving --trace --json)
diff "$BUILD_DIR/BENCH_f12_serving.json" BENCH_f12_serving.json \
  || { echo "check.sh: BENCH_f12_serving.json changed under --trace"; exit 1; }
# Tablet spans (tablet.op/serve/exec/wal/flush) must be observational too.
(cd "$BUILD_DIR" && ./bench/bench_f17_tablets --trace --json)
diff "$BUILD_DIR/BENCH_f17_tablets.json" BENCH_f17_tablets.json \
  || { echo "check.sh: BENCH_f17_tablets.json changed under --trace"; exit 1; }
(cd "$BUILD_DIR" && ./tools/json_check BENCH_*.json TRACE_*.json)

if [[ "${EVOLVE_SKIP_SANITIZERS:-0}" != "1" ]]; then
  SAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$SAN_DIR" -S . -DEVOLVE_SANITIZE=address,undefined
  cmake --build "$SAN_DIR" -j "$(nproc)"
  (cd "$SAN_DIR" && ctest --output-on-failure -j "$(nproc)")
  # Drive the calendar queue, SmallFn, and slab/arena hot paths (and the
  # preserved reference heap) end to end under ASan/UBSan.
  (cd "$SAN_DIR" && ./bench/bench_f13_scale --quick)
  # Drive the erasure-coding GET/hedge/repair machinery (fragment fan-out,
  # straggler cancellation, throttled rebuild) end to end under ASan/UBSan.
  (cd "$SAN_DIR" && ./bench/bench_f14_durability)
  # Drive the fair-share pool tree, preemption, disruption budgets, and
  # the rebalancer end to end under ASan/UBSan (the ctest pass above
  # already covers the PoolTree/Preemption/Rebalancer unit tests).
  (cd "$SAN_DIR" && ./bench/bench_f15_fairness)
  # Drive the partition park/resume, lease/fencing, and retry-budget
  # paths end to end under ASan/UBSan.
  (cd "$SAN_DIR" && ./bench/bench_f16_partitions)
  # Drive the tablet layer — WAL group commit, flush/generation reads,
  # split/merge/move, fencing, stale-route retries — end to end under
  # ASan/UBSan (the ctest pass above already covers the tablet unit and
  # 100-seed soak tests).
  (cd "$SAN_DIR" && ./bench/bench_f17_tablets)
  echo
  echo "check.sh: sanitizer (ASan/UBSan) test pass clean in $SAN_DIR"
fi

echo
echo "check.sh: all tests passed; reports in $BUILD_DIR/BENCH_*.json, traces in $BUILD_DIR/TRACE_*.json"
