#!/usr/bin/env bash
# CI-style check: configure, build, run the full test suite, then run the
# simulation-kernel churn bench in --json mode. Run from the repo root:
#
#   scripts/check.sh [build-dir]
#
# The churn bench writes BENCH_f9_churn.json into the build directory;
# compare it against the tracked baseline at the repo root to spot kernel
# perf regressions.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

(cd "$BUILD_DIR" && ./bench/bench_f9_churn --json)
echo
echo "check.sh: all tests passed; churn bench metrics in $BUILD_DIR/BENCH_f9_churn.json"
